package service

import (
	"bufio"
	"context"
	"errors"
	"net"
	"testing"

	"repro/internal/devsim"
	"repro/internal/hashx"
	"repro/internal/storage"
)

// startRPC serves the binary protocol for srv on an ephemeral loopback
// listener, returning its address. The listener stops with the test.
func startRPC(t *testing.T, srv *Server) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.ServeRPC(ctx, lis); err != nil {
			t.Errorf("ServeRPC: %v", err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return lis.Addr().String()
}

// rpcConn is a raw protocol connection for tests: one frame out, one
// frame in, no client-library smarts in the way.
type rpcConn struct {
	c  net.Conn
	br *bufio.Reader
}

func dialRPC(t *testing.T, addr string) *rpcConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &rpcConn{c: c, br: bufio.NewReader(c)}
}

func (rc *rpcConn) call(t *testing.T, body []byte) []byte {
	t.Helper()
	if err := WriteRPCFrame(rc.c, body); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadRPCFrame(rc.br, nil)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// wantRPCError asserts err is an *Error of the given kind and returns it.
func wantRPCError(t *testing.T, err error, kind string) *Error {
	t.Helper()
	var e *Error
	if !errors.As(err, &e) {
		t.Fatalf("error %v (%T), want *Error", err, err)
	}
	if e.Kind != kind {
		t.Fatalf("error kind %q (%s), want %q", e.Kind, e.Message, kind)
	}
	return e
}

// TestRPCServeEndToEnd drives the four ops and the error paths over a
// real listener, asserting the RPC plane answers exactly what the API
// core computes.
func TestRPCServeEndToEnd(t *testing.T) {
	reg, err := NewRegistry(storage.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	key := ModelKey{Benchmark: "convolution", Device: devsim.IntelI7}
	model := trainTinyModel(t, 3)
	if err := reg.Put(key, model); err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, reg, 1, 4)
	rc := dialRPC(t, startRPC(t, srv))

	// Predict by index agrees with the model itself.
	body, err := MarshalRPCPredictRequest(&PredictRequest{
		Benchmark: "convolution", Device: devsim.IntelI7, HasIndex: true, Index: 42})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := UnmarshalRPCPredictResponse(rc.call(t, body))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Index != 42 || pr.Resolution != resolutionExact || pr.Benchmark != "convolution" {
		t.Errorf("predict %+v", pr)
	}
	if want := model.Predict(model.Space().At(42), model.NewScratch()); pr.Seconds != want {
		t.Errorf("predict seconds %v, want %v", pr.Seconds, want)
	}

	// Predict by config addresses the same point as its index.
	cfg := model.Space().At(42).Map()
	body, err = MarshalRPCPredictRequest(&PredictRequest{
		Benchmark: "convolution", Device: devsim.IntelI7, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := UnmarshalRPCPredictResponse(rc.call(t, body))
	if err != nil {
		t.Fatal(err)
	}
	if pc.Index != 42 || pc.Seconds != pr.Seconds {
		t.Errorf("config predict %+v, want index 42 seconds %v", pc, pr.Seconds)
	}

	// Batch over the same indices returns element-wise identical results.
	body, err = MarshalRPCPredictBatchRequest(&PredictBatchRequest{
		Benchmark: "convolution", Device: devsim.IntelI7, Indices: []int64{42, 0, 7}})
	if err != nil {
		t.Fatal(err)
	}
	br, err := UnmarshalRPCPredictBatchResponse(rc.call(t, body))
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Predictions) != 3 || br.Predictions[0].Index != 42 || br.Predictions[0].Seconds != pr.Seconds {
		t.Errorf("batch %+v", br.Predictions)
	}

	// Top-M matches the HTTP plane's view of the same model.
	body, err = MarshalRPCTopMRequest(&TopMRequest{
		Benchmark: "convolution", Device: devsim.IntelI7, M: 5})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := UnmarshalRPCTopMResponse(rc.call(t, body))
	if err != nil {
		t.Fatal(err)
	}
	if tr.M != 5 || len(tr.Top) != 5 {
		t.Fatalf("topm %+v", tr)
	}
	apiTop, err := srv.TopM(&TopMRequest{Benchmark: "convolution", Device: devsim.IntelI7, M: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Top {
		if tr.Top[i].Index != apiTop.Top[i].Index || tr.Top[i].Seconds != apiTop.Top[i].Seconds {
			t.Errorf("topm[%d] = %+v, want %+v", i, tr.Top[i], apiTop.Top[i])
		}
	}

	// Models delta carries the registry listing.
	body, err = MarshalRPCModelsRequest(&ModelsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	mr, err := UnmarshalRPCModelsResponse(rc.call(t, body))
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Models) != 1 || mr.Models[0].Benchmark != "convolution" || mr.Generation == 0 {
		t.Errorf("models %+v", mr)
	}
	// A cursor past the generation mark yields an empty delta.
	body, err = MarshalRPCModelsRequest(&ModelsRequest{Since: mr.Generation})
	if err != nil {
		t.Fatal(err)
	}
	if mr2, err := UnmarshalRPCModelsResponse(rc.call(t, body)); err != nil || len(mr2.Models) != 0 {
		t.Errorf("delta past generation: %v, %+v", err, mr2)
	}

	// Unknown model: a not_found error frame.
	body, err = MarshalRPCPredictRequest(&PredictRequest{
		Benchmark: "convolution", Device: "martian accelerator", HasIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = UnmarshalRPCPredictResponse(rc.call(t, body))
	wantRPCError(t, err, errKindNotFound)

	// Unknown op: an invalid_argument error frame, connection survives.
	_, err = UnmarshalRPCPredictResponse(rc.call(t, []byte{0xEE}))
	wantRPCError(t, err, errKindInvalid)

	// Malformed payload: an error frame, and the connection still works.
	_, err = UnmarshalRPCPredictResponse(rc.call(t, []byte{byte(RPCOpPredict), 0xFF}))
	wantRPCError(t, err, errKindInvalid)
	body, err = MarshalRPCTopMRequest(&TopMRequest{
		Benchmark: "convolution", Device: devsim.IntelI7, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	if after, err := UnmarshalRPCTopMResponse(rc.call(t, body)); err != nil || len(after.Top) != 1 {
		t.Fatalf("connection dead after payload error: %v", err)
	}
}

// TestRPCPipelining writes a burst of request frames before reading any
// response: the server must answer each in order on one connection.
func TestRPCPipelining(t *testing.T) {
	reg, err := NewRegistry(storage.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	key := ModelKey{Benchmark: "convolution", Device: devsim.IntelI7}
	if err := reg.Put(key, trainTinyModel(t, 5)); err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, reg, 1, 4)
	rc := dialRPC(t, startRPC(t, srv))

	const n = 16
	for i := 0; i < n; i++ {
		body, err := MarshalRPCPredictRequest(&PredictRequest{
			Benchmark: "convolution", Device: devsim.IntelI7, HasIndex: true, Index: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteRPCFrame(rc.c, body); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		frame, err := ReadRPCFrame(rc.br, nil)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		resp, err := UnmarshalRPCPredictResponse(frame)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if resp.Index != int64(i) {
			t.Fatalf("response %d carries index %d: out of order", i, resp.Index)
		}
	}
}

// TestRPCNotOwnerRedirect asserts a sharded instance refuses non-owned
// keys over RPC with a not_owner frame naming the owner's addresses.
func TestRPCNotOwnerRedirect(t *testing.T) {
	key := ModelKey{Benchmark: "convolution", Device: devsim.IntelI7}
	owner := hashx.NewRing(2).Owner(key.String())
	notOwner := 1 - owner

	reg, err := NewRegistry(storage.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	peers := []string{"127.0.0.1:8180", "127.0.0.1:8181"}
	rpcPeers := []string{"127.0.0.1:9180", "127.0.0.1:9181"}
	srv := newTestServer(t, reg, 1, 4,
		WithShard(notOwner, 2), WithShardPeers(peers, rpcPeers))
	rc := dialRPC(t, startRPC(t, srv))

	body, err := MarshalRPCPredictRequest(&PredictRequest{
		Benchmark: "convolution", Device: devsim.IntelI7, HasIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = UnmarshalRPCPredictResponse(rc.call(t, body))
	e := wantRPCError(t, err, errKindNotOwner)
	if e.Owner == nil {
		t.Fatal("not_owner frame without owner ref")
	}
	if e.Owner.Shard != owner || e.Owner.Addr != peers[owner] || e.Owner.RPCAddr != rpcPeers[owner] {
		t.Errorf("owner ref %+v, want shard %d addr %s rpc %s",
			e.Owner, owner, peers[owner], rpcPeers[owner])
	}
}

// TestRPCShedsWhenSaturated holds the read-path semaphore (shared with
// the HTTP plane) and asserts prediction ops shed with a retryable
// overloaded frame while the models op — the replication path — stays
// exempt.
func TestRPCShedsWhenSaturated(t *testing.T) {
	reg, err := NewRegistry(storage.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	key := ModelKey{Benchmark: "convolution", Device: devsim.IntelI7}
	if err := reg.Put(key, trainTinyModel(t, 7)); err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, reg, 1, 4, WithMaxInflight(1))
	rc := dialRPC(t, startRPC(t, srv))

	if !srv.acquireRead() {
		t.Fatal("could not take the only read slot")
	}
	defer srv.releaseRead()

	body, err := MarshalRPCPredictRequest(&PredictRequest{
		Benchmark: "convolution", Device: devsim.IntelI7, HasIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = UnmarshalRPCPredictResponse(rc.call(t, body))
	e := wantRPCError(t, err, errKindOverloaded)
	if !e.Retryable || e.RetryAfterSeconds != retryAfterHintSeconds {
		t.Errorf("shed frame %+v lost the retry contract", e)
	}

	body, err = MarshalRPCModelsRequest(&ModelsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalRPCModelsResponse(rc.call(t, body)); err != nil {
		t.Errorf("models op shed while saturated: %v", err)
	}
}
