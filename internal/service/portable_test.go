package service

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/devsim"
)

// deviceSampleInputs measures n valid convolution configurations on the
// named simulated device and returns them in POST /v1/samples form.
func deviceSampleInputs(t *testing.T, device string, seed int64, n int) []map[string]any {
	t.Helper()
	b := bench.MustLookup("convolution")
	m, err := core.NewSimMeasurer(b, devsim.MustLookup(device), bench.Size{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]map[string]any, 0, n)
	for _, cfg := range b.Space().Sample(rng, 8*n) {
		if len(out) == n {
			break
		}
		secs, err := m.Measure(context.Background(), cfg)
		if err != nil {
			continue
		}
		out = append(out, map[string]any{"index": cfg.Index(), "seconds": secs})
	}
	if len(out) < n {
		t.Fatalf("only %d valid samples on %s", len(out), device)
	}
	return out
}

// smallTrainModel is the fast ensemble the portable API tests train.
var smallTrainModel = map[string]any{"ensemble": map[string]any{
	"k": 2, "hidden": 6, "train": map[string]any{"epochs": 150}}}

// TestPortableServingEndToEnd is the portable acceptance path: pool two
// devices' stored samples into a <bench>@* model via POST /v1/train,
// then serve /v1/predict and /v1/topm for a third device that never
// trained — by catalog name and by inline descriptor — with the
// documented resolution order.
func TestPortableServingEndToEnd(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, reg, 2, 8)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	// Ingesting under the portable slot is rejected with guidance.
	jpost(t, client, ts.URL, "/v1/samples", map[string]any{
		"benchmark": "convolution", "device": "*",
		"samples": []map[string]any{{"index": 1, "seconds": 0.1}}}, http.StatusBadRequest, nil)

	// One device's samples are not enough to pool: fail fast at submit.
	jpost(t, client, ts.URL, "/v1/samples", map[string]any{
		"benchmark": "convolution", "device": devsim.IntelI7, "source": "unit",
		"samples": deviceSampleInputs(t, devsim.IntelI7, 3, 30)}, http.StatusOK, nil)
	jpost(t, client, ts.URL, "/v1/train", map[string]any{
		"benchmark": "convolution", "device": "*", "seed": 5, "model": smallTrainModel},
		http.StatusBadRequest, nil)

	// Second device ingested; pooled training may queue now.
	jpost(t, client, ts.URL, "/v1/samples", map[string]any{
		"benchmark": "convolution", "device": devsim.AMD7970, "source": "unit",
		"samples": deviceSampleInputs(t, devsim.AMD7970, 4, 30)}, http.StatusOK, nil)

	// The benchmark-only sample listing enumerates both devices — the
	// pooled-training UX this PR adds.
	var sets []SampleSetInfo
	jget(t, client, ts.URL, "/v1/samples?benchmark=convolution", http.StatusOK, &sets)
	if len(sets) != 2 {
		t.Fatalf("benchmark-only sample listing: %+v", sets)
	}

	var st JobStatus
	jpost(t, client, ts.URL, "/v1/train", map[string]any{
		"benchmark": "convolution", "device": "*", "seed": 5, "model": smallTrainModel},
		http.StatusAccepted, &st)
	final := waitForJob(t, client, ts.URL, st.ID)
	if final.State != JobSucceeded {
		t.Fatalf("portable train job finished %s: %s", final.State, final.Error)
	}

	// The job surfaced which devices were pooled.
	var withEvents struct {
		Events []EventRecord `json:"events"`
	}
	jget(t, client, ts.URL, "/v1/jobs/"+st.ID, http.StatusOK, &withEvents)
	pooled := false
	for _, ev := range withEvents.Events {
		if ev.Kind == "pooled-devices" {
			pooled = true
			if ev.Done != 2 {
				t.Fatalf("pooled-devices event %+v, want Done=2", ev)
			}
		}
	}
	if !pooled {
		t.Fatal("no pooled-devices event on the train job")
	}

	// The registry lists the portable slot, flagged.
	var listing struct {
		ResolutionOrder []string    `json:"resolution_order"`
		Models          []ModelInfo `json:"models"`
	}
	jget(t, client, ts.URL, "/v1/models?benchmark=convolution", http.StatusOK, &listing)
	if len(listing.Models) != 1 || !listing.Models[0].Portable || listing.Models[0].Device != PortableDevice {
		t.Fatalf("portable model listing: %+v", listing.Models)
	}
	if len(listing.ResolutionOrder) != 2 {
		t.Fatalf("resolution order: %v", listing.ResolutionOrder)
	}

	// Predict for a device with NO exact model and NO training samples:
	// resolution falls back to the portable model.
	k40 := url.QueryEscape(devsim.NvidiaK40)
	var pred struct {
		Resolution string  `json:"resolution"`
		Device     string  `json:"device"`
		Seconds    float64 `json:"seconds"`
	}
	jget(t, client, ts.URL, "/v1/predict?benchmark=convolution&device="+k40+"&index=7",
		http.StatusOK, &pred)
	if pred.Resolution != "portable" || pred.Seconds <= 0 || pred.Device != devsim.NvidiaK40 {
		t.Fatalf("portable predict %+v", pred)
	}

	// Different devices bind differently: the same configuration may
	// predict a different time on another device through the same model.
	var pred2 struct {
		Resolution string  `json:"resolution"`
		Seconds    float64 `json:"seconds"`
	}
	jget(t, client, ts.URL, "/v1/predict?benchmark=convolution&device="+url.QueryEscape(devsim.NvidiaC2070)+"&index=7",
		http.StatusOK, &pred2)
	if pred2.Resolution != "portable" {
		t.Fatalf("portable predict for second device %+v", pred2)
	}

	// Top-M through the portable binding, cached per resolved device.
	var top struct {
		Resolution string `json:"resolution"`
		Top        []struct {
			Index   int64   `json:"index"`
			Seconds float64 `json:"seconds"`
		} `json:"top"`
	}
	jget(t, client, ts.URL, "/v1/topm?benchmark=convolution&device="+k40+"&m=5", http.StatusOK, &top)
	if top.Resolution != "portable" || len(top.Top) != 5 {
		t.Fatalf("portable top-M %+v", top)
	}

	// Inline descriptor: genuinely unseen hardware. Derived from the
	// GTX980 with a different shape so it matches no catalog entry.
	desc := devsim.MustLookup(devsim.NvidiaGTX980).Descriptor()
	desc.Name = "Hypothetical GPU X"
	desc.ComputeUnits = 24
	desc.MemBandwidthGBs = 512
	descJSON, err := json.Marshal(desc)
	if err != nil {
		t.Fatal(err)
	}
	var inline struct {
		Resolution string  `json:"resolution"`
		Device     string  `json:"device"`
		Seconds    float64 `json:"seconds"`
	}
	jget(t, client, ts.URL, "/v1/predict?benchmark=convolution&index=7&descriptor="+url.QueryEscape(string(descJSON)),
		http.StatusOK, &inline)
	if inline.Resolution != "portable" || inline.Device != "Hypothetical GPU X" || inline.Seconds <= 0 {
		t.Fatalf("inline-descriptor predict %+v", inline)
	}

	// The batch endpoint takes the descriptor inline too.
	var batch struct {
		Resolution  string `json:"resolution"`
		Predictions []struct {
			Seconds float64 `json:"seconds"`
		} `json:"predictions"`
	}
	jpost(t, client, ts.URL, "/v1/predict", map[string]any{
		"benchmark": "convolution", "descriptor": json.RawMessage(descJSON),
		"indices": []int64{1, 7, 9}}, http.StatusOK, &batch)
	if batch.Resolution != "portable" || len(batch.Predictions) != 3 {
		t.Fatalf("inline-descriptor batch %+v", batch)
	}

	// A malformed descriptor is a 400 naming the problem, not a 500.
	jget(t, client, ts.URL, "/v1/predict?benchmark=convolution&index=1&descriptor=%7Bnope",
		http.StatusBadRequest, nil)
	bad := desc
	bad.ComputeUnits = 0
	badJSON, _ := json.Marshal(bad)
	jget(t, client, ts.URL, "/v1/predict?benchmark=convolution&index=1&descriptor="+url.QueryEscape(string(badJSON)),
		http.StatusBadRequest, nil)

	// A device outside the catalog without a descriptor cannot resolve.
	jget(t, client, ts.URL, "/v1/predict?benchmark=convolution&device=UnknownHW&index=1",
		http.StatusNotFound, nil)
	// The portable slot itself is not addressable.
	jget(t, client, ts.URL, "/v1/predict?benchmark=convolution&device=%2A&index=1",
		http.StatusBadRequest, nil)

	// An exact model, once trained, wins over the portable fallback.
	jpost(t, client, ts.URL, "/v1/train", map[string]any{
		"benchmark": "convolution", "device": devsim.IntelI7, "seed": 5, "model": smallTrainModel},
		http.StatusAccepted, &st)
	if final := waitForJob(t, client, ts.URL, st.ID); final.State != JobSucceeded {
		t.Fatalf("exact train job finished %s: %s", final.State, final.Error)
	}
	var exact struct {
		Resolution string `json:"resolution"`
	}
	jget(t, client, ts.URL, "/v1/predict?benchmark=convolution&device="+devQ+"&index=7",
		http.StatusOK, &exact)
	if exact.Resolution != "exact" {
		t.Fatalf("exact model not preferred: %+v", exact)
	}
}

// TestPortableTrainInlineSamples covers the inline-sample pooled path:
// per-record device labels become features, and records without a label
// are rejected at submission.
func TestPortableTrainInlineSamples(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, reg, 1, 4)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	mk := func(device string, inputs []map[string]any) []map[string]any {
		out := make([]map[string]any, len(inputs))
		for i, in := range inputs {
			cp := map[string]any{}
			for k, v := range in {
				cp[k] = v
			}
			cp["device"] = device
			out[i] = cp
		}
		return out
	}
	a := mk(devsim.IntelI7, deviceSampleInputs(t, devsim.IntelI7, 11, 15))
	b := mk(devsim.NvidiaK40, deviceSampleInputs(t, devsim.NvidiaK40, 12, 15))

	// Labels missing on inline samples: rejected at submission.
	noLabel := deviceSampleInputs(t, devsim.IntelI7, 13, 3)
	jpost(t, client, ts.URL, "/v1/train", map[string]any{
		"benchmark": "convolution", "device": "*", "samples": noLabel},
		http.StatusBadRequest, nil)

	var st JobStatus
	jpost(t, client, ts.URL, "/v1/train", map[string]any{
		"benchmark": "convolution", "device": "*", "seed": 3,
		"model": smallTrainModel, "samples": append(a, b...)},
		http.StatusAccepted, &st)
	if final := waitForJob(t, client, ts.URL, st.ID); final.State != JobSucceeded {
		t.Fatalf("inline portable train finished %s: %s", final.State, final.Error)
	}
	var pred struct {
		Resolution string  `json:"resolution"`
		Seconds    float64 `json:"seconds"`
	}
	jget(t, client, ts.URL, "/v1/predict?benchmark=convolution&device="+url.QueryEscape(devsim.AMD7970)+"&index=3",
		http.StatusOK, &pred)
	if pred.Resolution != "portable" || pred.Seconds <= 0 {
		t.Fatalf("predict after inline portable train: %+v", pred)
	}
}
