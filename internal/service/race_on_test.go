//go:build race

package service

// raceEnabled reports whether the race detector is compiled in; the
// mmap lifecycle hammer keys its -short behaviour on it.
const raceEnabled = true
