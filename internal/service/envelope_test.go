package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/devsim"
	"repro/internal/hashx"
	"repro/internal/storage"
)

// TestErrorEnvelopeConformance enumerates every route's error classes
// and asserts the one contract satellite clients rely on: every non-2xx
// JSON body is the shared envelope — non-empty "error" and "kind", the
// kind's documented status code, and a Retry-After header exactly on
// retryable kinds.
func TestErrorEnvelopeConformance(t *testing.T) {
	newServer := func(t *testing.T, opts ...Option) *httptest.Server {
		t.Helper()
		reg, err := NewRegistry(storage.NewMemory())
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(newTestServer(t, reg, 1, 4, opts...))
		t.Cleanup(ts.Close)
		return ts
	}
	plain := newServer(t)

	// A serve replica rejects every mutating route with read_only.
	replica := newServer(t, WithRole(RoleServe))

	// A sharded instance rejects keys it does not own with not_owner.
	// Shard against whichever side of a 2-ring does NOT own the key.
	key := ModelKey{Benchmark: "convolution", Device: devsim.IntelI7}
	notOwner := 1 - hashx.NewRing(2).Owner(key.String())
	sharded := newServer(t, WithShard(notOwner, 2),
		WithShardPeers([]string{"http://s0", "http://s1"}, nil))

	// A drained daemon reports not_ready on /readyz.
	drained := newServer(t, WithRole(RoleAll))

	q := "benchmark=convolution&device=" + strings.ReplaceAll(devsim.IntelI7, " ", "+")
	cases := []struct {
		name       string
		base       *httptest.Server
		method     string
		path       string
		body       string
		wantStatus int
		wantKind   string
	}{
		{"jobs submit bad json", plain, "POST", "/v1/jobs", "{", 400, errKindInvalid},
		{"jobs submit unknown field", plain, "POST", "/v1/jobs", `{"martian":1}`, 400, errKindInvalid},
		{"job get unknown id", plain, "GET", "/v1/jobs/nope", "", 404, errKindNotFound},
		{"job get bad cursor", plain, "GET", "/v1/jobs/nope?after=x", "", 400, errKindInvalid},
		{"job cancel unknown id", plain, "DELETE", "/v1/jobs/nope", "", 404, errKindNotFound},
		{"samples ingest bad json", plain, "POST", "/v1/samples", "{", 400, errKindInvalid},
		{"samples ingest empty", plain, "POST", "/v1/samples",
			`{"benchmark":"convolution","device":"x"}`, 400, errKindInvalid},
		{"samples list device only", plain, "GET", "/v1/samples?device=x", "", 400, errKindInvalid},
		{"train bad json", plain, "POST", "/v1/train", "{", 400, errKindInvalid},
		{"train unknown benchmark", plain, "POST", "/v1/train",
			`{"benchmark":"martian","device":"x","samples":[{"index":0,"seconds":1}]}`, 400, errKindInvalid},
		{"models bad since", plain, "GET", "/v1/models?since=x", "", 400, errKindInvalid},
		{"models bad shard", plain, "GET", "/v1/models?shard=2", "", 400, errKindInvalid},
		{"models shard out of range", plain, "GET", "/v1/models?shard=9/4", "", 400, errKindInvalid},
		{"artifact bad name", plain, "GET", "/v1/models/noext", "", 400, errKindInvalid},
		{"artifact missing", plain, "GET", "/v1/models/convolution@nope.mlt", "", 404, errKindNotFound},
		{"predict no benchmark", plain, "GET", "/v1/predict", "", 400, errKindInvalid},
		{"predict portable slot", plain, "GET", "/v1/predict?benchmark=convolution&device=*", "", 400, errKindInvalid},
		{"predict no device", plain, "GET", "/v1/predict?benchmark=convolution", "", 400, errKindInvalid},
		{"predict bad descriptor", plain, "GET",
			"/v1/predict?benchmark=convolution&device=x&descriptor=%7B", "", 400, errKindInvalid},
		{"predict no model", plain, "GET", "/v1/predict?" + q + "&index=0", "", 404, errKindNotFound},
		{"predict bad index", plain, "GET", "/v1/predict?" + q + "&index=x", "", 400, errKindInvalid},
		{"predict bad config value", plain, "GET", "/v1/predict?" + q + "&c.TILE=x", "", 400, errKindInvalid},
		{"predict batch bad json", plain, "POST", "/v1/predict", "{", 400, errKindInvalid},
		{"predict batch neither", plain, "POST", "/v1/predict",
			`{"benchmark":"convolution","device":"x"}`, 400, errKindInvalid},
		{"predict batch both", plain, "POST", "/v1/predict",
			`{"benchmark":"convolution","device":"x","indices":[1],"configs":[{"a":1}]}`, 400, errKindInvalid},
		{"topm bad m", plain, "GET", "/v1/topm?" + q + "&m=0", "", 400, errKindInvalid},
		{"topm no model", plain, "GET", "/v1/topm?" + q, "", 404, errKindNotFound},

		{"replica jobs", replica, "POST", "/v1/jobs", `{}`, 405, errKindReadOnly},
		{"replica cancel", replica, "DELETE", "/v1/jobs/nope", "", 405, errKindReadOnly},
		{"replica ingest", replica, "POST", "/v1/samples", `{}`, 405, errKindReadOnly},
		{"replica train", replica, "POST", "/v1/train", `{}`, 405, errKindReadOnly},

		{"sharded predict", sharded, "GET", "/v1/predict?" + q + "&index=0", "", 421, errKindNotOwner},
		{"sharded batch", sharded, "POST", "/v1/predict",
			`{"benchmark":"convolution","device":"` + devsim.IntelI7 + `","indices":[0]}`, 421, errKindNotOwner},
		{"sharded topm", sharded, "GET", "/v1/topm?" + q, "", 421, errKindNotOwner},

		{"drained readyz", drained, "GET", "/readyz", "", 503, errKindNotReady},
	}

	// Retryable kinds carry the Retry-After contract; every other kind
	// must not.
	retryable := map[string]bool{errKindQueueFull: true, errKindOverloaded: true}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.base == drained {
				drainOnce(t, drained)
			}
			var body io.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, tc.base.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				raw, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, raw)
			}
			var envelope struct {
				Error string `json:"error"`
				Kind  string `json:"kind"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
				t.Fatalf("body is not JSON: %v", err)
			}
			if envelope.Kind != tc.wantKind {
				t.Errorf("kind %q, want %q", envelope.Kind, tc.wantKind)
			}
			if envelope.Error == "" {
				t.Error("empty error message")
			}
			if got := resp.Header.Get("Retry-After"); (got != "") != retryable[tc.wantKind] {
				t.Errorf("Retry-After %q for kind %q (retryable=%v)", got, tc.wantKind, retryable[tc.wantKind])
			}
		})
	}
}

// drainOnce drains srv's queue the first time it is asked, making
// /readyz report not_ready; repeat calls are no-ops.
func drainOnce(t *testing.T, ts *httptest.Server) {
	t.Helper()
	// The handler is the *Server itself.
	srv, ok := ts.Config.Handler.(*Server)
	if !ok {
		t.Fatal("test server handler is not *Server")
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestPredictQueryAliases pins the config-map addressing of
// /v1/predict and /v1/topm: c.<param> is the only spelling. The
// removed pre-RPC-plane p.<param> alias must be rejected with a 400
// invalid_argument naming the replacement — not silently ignored,
// which would surface as a confusing "parameter missing" error.
func TestPredictQueryAliases(t *testing.T) {
	reg, err := NewRegistry(storage.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	key := ModelKey{Benchmark: "convolution", Device: devsim.IntelI7}
	model := trainTinyModel(t, 13)
	if err := reg.Put(key, model); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newTestServer(t, reg, 1, 4))
	defer ts.Close()

	cfg := model.Space().At(3)
	canonical, deprecated, mixed := "", "", ""
	for name, v := range cfg.Map() {
		s := "=" + strconv.Itoa(v)
		canonical += "&c." + name + s
		deprecated += "&p." + name + s
		mixed += "&c." + name + s + "&p." + name + "=0"
	}
	q := "benchmark=convolution&device=" + strings.ReplaceAll(devsim.IntelI7, " ", "+")
	var want PredictResponse
	jget(t, ts.Client(), ts.URL, "/v1/predict?"+q+canonical, http.StatusOK, &want)
	if want.Index != 3 {
		t.Fatalf("canonical spelling resolved index %d, want 3", want.Index)
	}
	for _, alias := range []string{deprecated, mixed} {
		resp, err := ts.Client().Get(ts.URL + "/v1/predict?" + q + alias)
		if err != nil {
			t.Fatal(err)
		}
		var envelope struct {
			Kind string `json:"kind"`
			Err  string `json:"error"`
		}
		if derr := json.NewDecoder(resp.Body).Decode(&envelope); derr != nil {
			t.Fatal(derr)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || envelope.Kind != "invalid_argument" {
			t.Errorf("p. spelling %q: status %d kind %q, want 400 invalid_argument", alias, resp.StatusCode, envelope.Kind)
		}
		if !strings.Contains(envelope.Err, "c.") {
			t.Errorf("p. rejection %q does not point at the c. replacement", envelope.Err)
		}
	}
}
