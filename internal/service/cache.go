package service

import (
	"sync"

	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/tuning"
)

// serveCache is the daemon's read-path cache: per-model pools of batch
// prediction scratches (so /v1/predict allocates nothing steady-state)
// and memoised top-M sweeps keyed (ModelKey, M) (so repeated /v1/topm
// hits under load stop paying a full-space sweep).
//
// Entries are invalidated two ways, belt and braces: explicitly by the
// Put/Reload paths (Server calls invalidate/invalidateAll), and
// implicitly by pointer identity — entry returns a fresh slot whenever
// the registry hands out a different *core.Model than the slot was built
// for, so a cache can never serve results from a replaced model.
//
// Top-M *results* outlive their entries: every computed core.TopMResult
// is retained per (key, M) across invalidation and entry replacement,
// and the next entry's first sweep for that M warm-starts from it via
// core.Model.TopMIncremental. Retention is safe where serving stale data
// would not be, because a TopMResult carries content fingerprints — the
// incremental sweep proves the old answer still holds (zero forward
// passes) or uses it only as an exact-rescored seed; the returned set is
// always identical to a cold sweep of the current model.
type serveCache struct {
	m *cacheMetrics // nil-safe: a bare cache runs unmetered
	// engine is the read path's configured inference engine name
	// (Server.WithEngine); "" serves on the float64 reference.
	engine string

	mu      sync.Mutex
	entries map[ModelKey]*serveEntry
	// binds memoises portable-model device bindings per resolved key, so
	// repeated requests for one device reuse the same bound *core.Model —
	// which is what keeps the pointer-identity entry cache effective on
	// the portable path. A bind is only valid while its parent (the
	// registry's current portable model) is unchanged.
	binds map[ModelKey]bindRec
	// prevTop retains the newest top-M result per (key, M) — warm-start
	// provenance, not served data, so invalidation never clears it.
	prevTop map[ModelKey]map[int]*core.TopMResult
}

// bindRec is one memoised device binding of a portable model.
type bindRec struct {
	parent *core.Model
	bound  *core.Model
}

// serveEntry caches read-path state for one loaded model.
type serveEntry struct {
	// src is the model the registry (or bind memo) handed out — the
	// pointer the cache's identity check runs on. model is the serving
	// view: src with the configured engine applied, or src itself when
	// the engine is the reference or could not be applied.
	src       *core.Model
	model     *core.Model
	cache     *serveCache
	key       ModelKey
	m         *cacheMetrics
	scratches sync.Pool // of *core.BatchScratch

	mu   sync.Mutex
	topM map[int]*topMRec
	// prev is a snapshot of the retained results taken at entry build;
	// each M's first sweep warm-starts from prev[M].
	prev map[int]*core.TopMResult
}

// topMRec is one memoised sweep: the rendered response plus the
// provenance-carrying result future sweeps warm-start from.
type topMRec struct {
	res *core.TopMResult
	out []Prediction
}

// maxTopMCacheEntries bounds the per-model number of distinct cached M
// values; beyond it the map is reset rather than evicted piecemeal.
const maxTopMCacheEntries = 8

func newServeCache(m *cacheMetrics, engine string) *serveCache {
	return &serveCache{
		m:       m,
		engine:  engine,
		entries: make(map[ModelKey]*serveEntry),
		binds:   make(map[ModelKey]bindRec),
		prevTop: make(map[ModelKey]map[int]*core.TopMResult),
	}
}

// bound returns parent bound to the given device vector, memoised under
// key. The memo is keyed by the *resolved* key (benchmark@requesting
// device), and revalidated by parent pointer: a retrained or reloaded
// portable model invalidates every stale binding on first use.
func (c *serveCache) bound(key ModelKey, parent *core.Model, device []float64) (*core.Model, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.binds[key]; ok && r.parent == parent {
		c.m.bind(true)
		return r.bound, nil
	}
	c.m.bind(false)
	bound, err := parent.WithDevice(device)
	if err != nil {
		return nil, err
	}
	c.binds[key] = bindRec{parent: parent, bound: bound}
	return bound, nil
}

// engineView applies the configured engine to m. Engine selection can
// refuse a model (the int16 proof covers neither exotic topologies nor
// diverged weight magnitudes); the read path then serves that model on
// the float64 reference — correct, just slower — and counts the
// fallback rather than failing requests.
func (c *serveCache) engineView(m *core.Model) *core.Model {
	if c.engine == "" || c.engine == ann.EngineFloat64 {
		return m
	}
	view, err := m.WithEngine(c.engine)
	if err != nil {
		c.m.engineFallback()
		return m
	}
	return view
}

// entry returns the cache slot for key's current model, building a fresh
// one when none exists or the model pointer changed (reload, retrain,
// re-bind). A fresh slot snapshots the retained top-M results for the
// key, so its first sweeps start warm.
func (c *serveCache) entry(key ModelKey, m *core.Model) *serveEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil || e.src != m {
		c.m.entry(false)
		prev := make(map[int]*core.TopMResult, len(c.prevTop[key]))
		for M, res := range c.prevTop[key] {
			prev[M] = res
		}
		e = &serveEntry{src: m, model: c.engineView(m), cache: c, key: key,
			m: c.m, topM: make(map[int]*topMRec), prev: prev}
		view := e.model
		e.scratches.New = func() any { return view.NewBatchScratch() }
		c.entries[key] = e
	} else {
		c.m.entry(true)
	}
	return e
}

// retain records the newest result for (key, M). It must be called
// without c.mu held (topMCached holds its entry lock, and entry locks
// never nest inside the cache lock).
func (c *serveCache) retain(key ModelKey, M int, res *core.TopMResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	keep := c.prevTop[key]
	if keep == nil {
		keep = make(map[int]*core.TopMResult)
		c.prevTop[key] = keep
	}
	if _, ok := keep[M]; !ok && len(keep) >= maxTopMCacheEntries {
		keep = make(map[int]*core.TopMResult)
		c.prevTop[key] = keep
	}
	keep[M] = res
}

// invalidate drops key's slot and binding (a retrained model was Put).
// Bindings of *other* keys that resolved through a replaced portable
// model self-invalidate on their next use via the parent-pointer check.
// Retained top-M results survive: they seed the replacement model's
// first sweeps.
func (c *serveCache) invalidate(key ModelKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, key)
	delete(c.binds, key)
	c.m.invalidated()
}

// invalidateAll drops every slot (the registry was reloaded). Retained
// top-M results survive here too.
func (c *serveCache) invalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[ModelKey]*serveEntry)
	c.binds = make(map[ModelKey]bindRec)
	c.m.invalidated()
}

// predictBatch predicts cfgs through a pooled scratch, appending to dst.
func (e *serveEntry) predictBatch(cfgs []tuning.Config, dst []float64) []float64 {
	s := e.scratches.Get().(*core.BatchScratch)
	defer e.scratches.Put(s)
	return e.model.PredictBatchWith(cfgs, s, dst)
}

// topMCached returns the model's top-M predictions, computing and
// memoising the sweep on first use. The first sweep for each M
// warm-starts from the key's retained previous result (when one exists):
// an unchanged model reuses it outright, a retrained one pays ≤ M
// re-scores plus a seeded sweep — the answer is identical to a cold
// sweep either way. Concurrent requests for the same entry serialise on
// the entry lock, so a burst of identical top-M queries pays exactly one
// sweep.
func (e *serveEntry) topMCached(M int) []Prediction {
	e.mu.Lock()
	defer e.mu.Unlock()
	if rec, ok := e.topM[M]; ok {
		e.m.topm(true)
		return rec.out
	}
	e.m.topm(false)
	prev := e.prev[M]
	res := e.model.TopMIncremental(M, prev)
	if prev != nil {
		e.m.topmSeeded()
	}
	out := make([]Prediction, len(res.Top))
	for i, p := range res.Top {
		cfg := e.model.Space().At(p.Index)
		out[i] = Prediction{Index: p.Index, Config: cfg.Map(), Seconds: p.Seconds}
	}
	if len(e.topM) >= maxTopMCacheEntries {
		e.topM = make(map[int]*topMRec)
	}
	e.topM[M] = &topMRec{res: res, out: out}
	e.cache.retain(e.key, M, res)
	return out
}
