package service

import (
	"sync"

	"repro/internal/core"
	"repro/internal/tuning"
)

// serveCache is the daemon's read-path cache: per-model pools of batch
// prediction scratches (so /v1/predict allocates nothing steady-state)
// and memoised top-M sweeps keyed (ModelKey, M) (so repeated /v1/topm
// hits under load stop paying a full-space sweep).
//
// Entries are invalidated two ways, belt and braces: explicitly by the
// Put/Reload paths (Server calls invalidate/invalidateAll), and
// implicitly by pointer identity — entry returns a fresh slot whenever
// the registry hands out a different *core.Model than the slot was built
// for, so a cache can never serve results from a replaced model.
type serveCache struct {
	m *cacheMetrics // nil-safe: a bare cache runs unmetered

	mu      sync.Mutex
	entries map[ModelKey]*serveEntry
	// binds memoises portable-model device bindings per resolved key, so
	// repeated requests for one device reuse the same bound *core.Model —
	// which is what keeps the pointer-identity entry cache effective on
	// the portable path. A bind is only valid while its parent (the
	// registry's current portable model) is unchanged.
	binds map[ModelKey]bindRec
}

// bindRec is one memoised device binding of a portable model.
type bindRec struct {
	parent *core.Model
	bound  *core.Model
}

// serveEntry caches read-path state for one loaded model.
type serveEntry struct {
	model     *core.Model
	m         *cacheMetrics
	scratches sync.Pool // of *core.BatchScratch

	mu   sync.Mutex
	topM map[int][]prediction
}

// maxTopMCacheEntries bounds the per-model number of distinct cached M
// values; beyond it the map is reset rather than evicted piecemeal.
const maxTopMCacheEntries = 8

func newServeCache(m *cacheMetrics) *serveCache {
	return &serveCache{m: m, entries: make(map[ModelKey]*serveEntry), binds: make(map[ModelKey]bindRec)}
}

// bound returns parent bound to the given device vector, memoised under
// key. The memo is keyed by the *resolved* key (benchmark@requesting
// device), and revalidated by parent pointer: a retrained or reloaded
// portable model invalidates every stale binding on first use.
func (c *serveCache) bound(key ModelKey, parent *core.Model, device []float64) (*core.Model, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.binds[key]; ok && r.parent == parent {
		c.m.bind(true)
		return r.bound, nil
	}
	c.m.bind(false)
	bound, err := parent.WithDevice(device)
	if err != nil {
		return nil, err
	}
	c.binds[key] = bindRec{parent: parent, bound: bound}
	return bound, nil
}

// entry returns the cache slot for key's current model, building a fresh
// one when none exists or the model pointer changed (reload, retrain).
func (c *serveCache) entry(key ModelKey, m *core.Model) *serveEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil || e.model != m {
		c.m.entry(false)
		e = &serveEntry{model: m, m: c.m, topM: make(map[int][]prediction)}
		e.scratches.New = func() any { return m.NewBatchScratch() }
		c.entries[key] = e
	} else {
		c.m.entry(true)
	}
	return e
}

// invalidate drops key's slot and binding (a retrained model was Put).
// Bindings of *other* keys that resolved through a replaced portable
// model self-invalidate on their next use via the parent-pointer check.
func (c *serveCache) invalidate(key ModelKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, key)
	delete(c.binds, key)
	c.m.invalidated()
}

// invalidateAll drops every slot (the registry was reloaded).
func (c *serveCache) invalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[ModelKey]*serveEntry)
	c.binds = make(map[ModelKey]bindRec)
	c.m.invalidated()
}

// predictBatch predicts cfgs through a pooled scratch, appending to dst.
func (e *serveEntry) predictBatch(cfgs []tuning.Config, dst []float64) []float64 {
	s := e.scratches.Get().(*core.BatchScratch)
	defer e.scratches.Put(s)
	return e.model.PredictBatchWith(cfgs, s, dst)
}

// topMCached returns the model's top-M predictions, computing and
// memoising the sweep on first use. Concurrent requests for the same
// entry serialise on the entry lock, so a burst of identical top-M
// queries pays exactly one sweep.
func (e *serveEntry) topMCached(M int) []prediction {
	e.mu.Lock()
	defer e.mu.Unlock()
	if top, ok := e.topM[M]; ok {
		e.m.topm(true)
		return top
	}
	e.m.topm(false)
	top := e.model.TopM(M)
	out := make([]prediction, len(top))
	for i, p := range top {
		cfg := e.model.Space().At(p.Index)
		out[i] = prediction{Index: p.Index, Config: cfg.Map(), Seconds: p.Seconds}
	}
	if len(e.topM) >= maxTopMCacheEntries {
		e.topM = make(map[int][]prediction)
	}
	e.topM[M] = out
	return out
}
