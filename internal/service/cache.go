package service

import (
	"sync"

	"repro/internal/core"
	"repro/internal/tuning"
)

// serveCache is the daemon's read-path cache: per-model pools of batch
// prediction scratches (so /v1/predict allocates nothing steady-state)
// and memoised top-M sweeps keyed (ModelKey, M) (so repeated /v1/topm
// hits under load stop paying a full-space sweep).
//
// Entries are invalidated two ways, belt and braces: explicitly by the
// Put/Reload paths (Server calls invalidate/invalidateAll), and
// implicitly by pointer identity — entry returns a fresh slot whenever
// the registry hands out a different *core.Model than the slot was built
// for, so a cache can never serve results from a replaced model.
type serveCache struct {
	mu      sync.Mutex
	entries map[ModelKey]*serveEntry
}

// serveEntry caches read-path state for one loaded model.
type serveEntry struct {
	model     *core.Model
	scratches sync.Pool // of *core.BatchScratch

	mu   sync.Mutex
	topM map[int][]prediction
}

// maxTopMCacheEntries bounds the per-model number of distinct cached M
// values; beyond it the map is reset rather than evicted piecemeal.
const maxTopMCacheEntries = 8

func newServeCache() *serveCache {
	return &serveCache{entries: make(map[ModelKey]*serveEntry)}
}

// entry returns the cache slot for key's current model, building a fresh
// one when none exists or the model pointer changed (reload, retrain).
func (c *serveCache) entry(key ModelKey, m *core.Model) *serveEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil || e.model != m {
		e = &serveEntry{model: m, topM: make(map[int][]prediction)}
		e.scratches.New = func() any { return m.NewBatchScratch() }
		c.entries[key] = e
	}
	return e
}

// invalidate drops key's slot (a retrained model was Put).
func (c *serveCache) invalidate(key ModelKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, key)
}

// invalidateAll drops every slot (the registry was reloaded).
func (c *serveCache) invalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[ModelKey]*serveEntry)
}

// predictBatch predicts cfgs through a pooled scratch, appending to dst.
func (e *serveEntry) predictBatch(cfgs []tuning.Config, dst []float64) []float64 {
	s := e.scratches.Get().(*core.BatchScratch)
	defer e.scratches.Put(s)
	return e.model.PredictBatchWith(cfgs, s, dst)
}

// topMCached returns the model's top-M predictions, computing and
// memoising the sweep on first use. Concurrent requests for the same
// entry serialise on the entry lock, so a burst of identical top-M
// queries pays exactly one sweep.
func (e *serveEntry) topMCached(M int) []prediction {
	e.mu.Lock()
	defer e.mu.Unlock()
	if top, ok := e.topM[M]; ok {
		return top
	}
	top := e.model.TopM(M)
	out := make([]prediction, len(top))
	for i, p := range top {
		cfg := e.model.Space().At(p.Index)
		out[i] = prediction{Index: p.Index, Config: cfg.Map(), Seconds: p.Seconds}
	}
	if len(e.topM) >= maxTopMCacheEntries {
		e.topM = make(map[int][]prediction)
	}
	e.topM[M] = out
	return out
}
