package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/ann"
	"repro/internal/devsim"
)

// TestEngineOptionEndToEnd runs the read path under every registered
// engine and checks the serving contract: the engine in effect shows up
// in /v1/stats and /v1/models, predictions stay sane, and the top-M
// answer — set, order and exact seconds — is identical across engines,
// because engines only ever screen the sweep while the result heap
// holds float-reference scores.
func TestEngineOptionEndToEnd(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := ModelKey{Benchmark: "convolution", Device: devsim.IntelI7}
	if err := reg.Put(key, trainTinyModel(t, 41)); err != nil {
		t.Fatal(err)
	}

	type topResp struct {
		Top []struct {
			Index   int64   `json:"index"`
			Seconds float64 `json:"seconds"`
		} `json:"top"`
	}
	tops := make(map[string]topResp)

	for _, name := range ann.EngineNames() {
		t.Run(name, func(t *testing.T) {
			srv := newTestServer(t, reg, 1, 2, WithEngine(name))
			if srv.Engine() != name {
				t.Fatalf("Engine() = %q, want %q", srv.Engine(), name)
			}
			ts := httptest.NewServer(srv)
			defer ts.Close()
			client := ts.Client()

			var stats struct {
				Engine string `json:"engine"`
			}
			jget(t, client, ts.URL, "/v1/stats", http.StatusOK, &stats)
			if stats.Engine != name {
				t.Errorf("/v1/stats engine %q, want %q", stats.Engine, name)
			}

			var listing struct {
				Engine string `json:"engine"`
				Models []struct {
					Loaded       bool `json:"loaded"`
					WeightFormat int  `json:"weight_format"`
				} `json:"models"`
			}
			jget(t, client, ts.URL, "/v1/models", http.StatusOK, &listing)
			if listing.Engine != name {
				t.Errorf("/v1/models engine %q, want %q", listing.Engine, name)
			}
			if len(listing.Models) != 1 || !listing.Models[0].Loaded {
				t.Fatalf("listing %+v", listing.Models)
			}
			if wf := listing.Models[0].WeightFormat; wf < 1 {
				t.Errorf("loaded model reports weight_format %d, want >= 1", wf)
			}

			var single struct {
				Seconds float64 `json:"seconds"`
			}
			jget(t, client, ts.URL, "/v1/predict?benchmark=convolution&device="+devQ+"&index=4242",
				http.StatusOK, &single)
			if single.Seconds <= 0 {
				t.Errorf("predict seconds %v under engine %s", single.Seconds, name)
			}

			var top topResp
			jget(t, client, ts.URL, "/v1/topm?benchmark=convolution&device="+devQ+"&m=8",
				http.StatusOK, &top)
			if len(top.Top) != 8 {
				t.Fatalf("top-M length %d", len(top.Top))
			}
			tops[name] = top
		})
	}

	ref := tops[ann.EngineFloat64]
	for name, top := range tops {
		for i := range ref.Top {
			if top.Top[i] != ref.Top[i] {
				t.Errorf("engine %s top-M differs from reference at %d: %+v vs %+v",
					name, i, top.Top[i], ref.Top[i])
			}
		}
	}
}

// TestUnknownEngineRejected pins construction-time validation: a typo'd
// -engine must fail server construction with an error naming the valid
// set, not fall back silently.
func TestUnknownEngineRejected(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(reg, 1, 2, WithEngine("float32"))
	if err == nil {
		t.Fatal("New accepted an unknown engine")
	}
	for _, n := range ann.EngineNames() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("error %q does not name valid engine %q", err, n)
		}
	}
}

// TestTopMSeededAcrossPut checks the serve cache warm-starts top-M
// sweeps across a model swap: after Put replaces the model with an
// equivalent retrain, the next top-M query must be a cache miss (the
// entry was rebuilt) but a *seeded* sweep — counted in
// mltuned_topm_seeded_total — and its answer must match a cold sweep's.
func TestTopMSeededAcrossPut(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := ModelKey{Benchmark: "convolution", Device: devsim.IntelI7}
	if err := reg.Put(key, trainTinyModel(t, 51)); err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, reg, 1, 2)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	type topResp struct {
		Top []struct {
			Index   int64   `json:"index"`
			Seconds float64 `json:"seconds"`
		} `json:"top"`
	}
	var first topResp
	jget(t, client, ts.URL, "/v1/topm?benchmark=convolution&device="+devQ+"&m=5", http.StatusOK, &first)
	if len(first.Top) != 5 {
		t.Fatalf("top-M length %d", len(first.Top))
	}
	cm := srv.metrics.cache
	if got := cm.topmSeededC.Value(); got != 0 {
		t.Fatalf("cold sweep counted as seeded (%d)", got)
	}

	// Retraining deterministically from the same seed swaps in a model
	// with identical content: the retained previous result seeds the
	// sweep and the answer is unchanged.
	if err := reg.Put(key, trainTinyModel(t, 51)); err != nil {
		t.Fatal(err)
	}
	srv.cache.invalidate(key) // what the job path does after Put
	var second topResp
	jget(t, client, ts.URL, "/v1/topm?benchmark=convolution&device="+devQ+"&m=5", http.StatusOK, &second)
	if got := cm.topmSeededC.Value(); got != 1 {
		t.Errorf("mltuned_topm_seeded_total = %d after swap, want 1", got)
	}
	for i := range first.Top {
		if second.Top[i] != first.Top[i] {
			t.Errorf("seeded top-M differs at %d: %+v vs %+v", i, second.Top[i], first.Top[i])
		}
	}

	// A genuinely different model must also go through the seeding path
	// (the retained result still prunes), and the answer must reflect
	// the new model — the warm start never serves stale data.
	if err := reg.Put(key, trainTinyModel(t, 52)); err != nil {
		t.Fatal(err)
	}
	srv.cache.invalidate(key)
	var third topResp
	jget(t, client, ts.URL, "/v1/topm?benchmark=convolution&device="+devQ+"&m=5", http.StatusOK, &third)
	if got := cm.topmSeededC.Value(); got != 2 {
		t.Errorf("mltuned_topm_seeded_total = %d after second swap, want 2", got)
	}
	same := true
	for i := range third.Top {
		if third.Top[i] != first.Top[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("top-M unchanged after a different model was swapped in (stale warm start?)")
	}

	// The stats endpoint exports the counter under its metric name.
	var stats struct {
		Telemetry struct {
			Metrics []struct {
				Name string `json:"name"`
			} `json:"metrics"`
		} `json:"telemetry"`
	}
	jget(t, client, ts.URL, "/v1/stats", http.StatusOK, &stats)
	found := false
	for _, m := range stats.Telemetry.Metrics {
		if m.Name == "mltuned_topm_seeded_total" {
			found = true
		}
	}
	if !found {
		t.Error("mltuned_topm_seeded_total missing from /v1/stats telemetry")
	}
}
