package service

import (
	"context"
	"net/http/httptest"
	"sort"
	"testing"

	"repro/internal/devsim"
	"repro/internal/hashx"
	"repro/internal/storage"
)

func TestParseShard(t *testing.T) {
	for _, tc := range []struct {
		spec         string
		index, count int
	}{
		{"0/1", 0, 1}, {"0/2", 0, 2}, {"1/2", 1, 2}, {"7/8", 7, 8},
	} {
		index, count, err := ParseShard(tc.spec)
		if err != nil || index != tc.index || count != tc.count {
			t.Errorf("ParseShard(%q) = %d, %d, %v; want %d, %d", tc.spec, index, count, err, tc.index, tc.count)
		}
		if got := FormatShard(index, count); got != tc.spec {
			t.Errorf("FormatShard(%d, %d) = %q, want %q", index, count, got, tc.spec)
		}
	}
	for _, bad := range []string{"", "1", "/", "1/", "/2", "2/2", "-1/2", "0/0", "x/2", "1/y", "1/2/3"} {
		if _, _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

// TestPortableKeysBelongToEveryShard pins the one ownership exception:
// benchmark@* models resolve owned keys on any shard, so every shard
// owns (and replicates) them.
func TestPortableKeysBelongToEveryShard(t *testing.T) {
	portable := ModelKey{Benchmark: "convolution", Device: PortableDevice}
	concrete := ModelKey{Benchmark: "convolution", Device: devsim.IntelI7}
	owners := 0
	for i := 0; i < 4; i++ {
		ring := newShardRing(i, 4)
		if !ring.owns(portable) {
			t.Errorf("shard %d/4 does not own portable key %s", i, portable)
		}
		if ring.owns(concrete) {
			owners++
		}
	}
	if owners != 1 {
		t.Errorf("%d shards own %s, want exactly 1", owners, concrete)
	}
}

// shardTestKeys fabricates model keys and splits them by 2-ring owner.
func shardTestKeys(n int) (all []ModelKey, owned [2][]string) {
	ring := hashx.NewRing(2)
	for i := 0; i < n; i++ {
		key := ModelKey{Benchmark: "convolution", Device: "shard-test-" + string(rune('a'+i))}
		all = append(all, key)
		owned[ring.Owner(key.String())] = append(owned[ring.Owner(key.String())], key.Device)
	}
	return all, owned
}

// TestModelsShardFilter asserts GET /v1/models?shard=i/n returns exactly
// the slice of the listing the shard owns, and that a sharded instance
// reports its shard in the listing and in /v1/stats.
func TestModelsShardFilter(t *testing.T) {
	reg, err := NewRegistry(storage.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	model := trainTinyModel(t, 17)
	keys, owned := shardTestKeys(8)
	if len(owned[0]) == 0 || len(owned[1]) == 0 {
		t.Fatalf("degenerate split %v (pick more keys)", owned)
	}
	for _, key := range keys {
		if err := reg.Put(key, model); err != nil {
			t.Fatal(err)
		}
	}
	srv := newTestServer(t, reg, 1, 4,
		WithShard(0, 2), WithShardPeers([]string{"http://s0", "http://s1"}, []string{"r0", "r1"}))

	for shard := 0; shard < 2; shard++ {
		resp, err := srv.Models(&ModelsRequest{Shard: FormatShard(shard, 2)})
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, m := range resp.Models {
			got = append(got, m.Device)
		}
		sort.Strings(got)
		want := append([]string(nil), owned[shard]...)
		sort.Strings(want)
		if len(got) != len(want) {
			t.Fatalf("shard %d listing %v, want %v", shard, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shard %d listing %v, want %v", shard, got, want)
			}
		}
	}

	// The instance's own shard shows up in the listing and the stats.
	resp, err := srv.Models(&ModelsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Shard == nil || resp.Shard.Index != 0 || resp.Shard.Count != 2 {
		t.Errorf("models shard info %+v", resp.Shard)
	}
	stats := srv.Stats()
	if stats.Shard == nil || stats.Shard.Index != 0 || stats.Shard.Count != 2 ||
		len(stats.Shard.Peers) != 2 || len(stats.Shard.RPCPeers) != 2 {
		t.Errorf("stats shard info %+v", stats.Shard)
	}
	if unsharded := newTestServer(t, reg, 1, 4).Stats(); unsharded.Shard != nil {
		t.Errorf("unsharded stats carry shard info %+v", unsharded.Shard)
	}
}

// TestShardedReplication runs one replication round of a sharded serve
// replica against an upstream holding the whole keyspace: only the keys
// the replica's shard owns may install.
func TestShardedReplication(t *testing.T) {
	upReg, err := NewRegistry(storage.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	model := trainTinyModel(t, 19)
	keys, owned := shardTestKeys(8)
	for _, key := range keys {
		if err := upReg.Put(key, model); err != nil {
			t.Fatal(err)
		}
	}
	up := newTestServer(t, upReg, 1, 4)
	ts := httptest.NewServer(up)
	defer ts.Close()

	replicaReg, err := NewRegistry(storage.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	replica := newTestServer(t, replicaReg, 1, 4,
		WithRole(RoleServe), WithUpstream(ts.URL, 0), WithShard(1, 2))
	if err := replica.repl.syncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, m := range replicaReg.List() {
		got = append(got, m.Device)
	}
	sort.Strings(got)
	want := append([]string(nil), owned[1]...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("replica holds %v, want shard 1's %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("replica holds %v, want shard 1's %v", got, want)
		}
	}
	// The cursor still advances to the upstream's full generation mark:
	// filtered-out models are deliberately not wanted, not missed.
	if cur := replica.repl.status().Generation; cur != upReg.Generation() {
		t.Errorf("replica cursor %d, upstream generation %d", cur, upReg.Generation())
	}
}
