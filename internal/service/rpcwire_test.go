package service

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/devsim"
)

// --- framing ----------------------------------------------------------

func TestRPCFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{{}, {0x01}, bytes.Repeat([]byte{0xAB}, 1000)}
	for _, body := range bodies {
		if err := WriteRPCFrame(&buf, body); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i, want := range bodies {
		got, err := ReadRPCFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
		scratch = got[:0]
	}
	// Clean stream end is io.EOF; a truncated body is ErrUnexpectedEOF.
	if _, err := ReadRPCFrame(&buf, nil); err != io.EOF {
		t.Errorf("empty stream: %v, want io.EOF", err)
	}
	short := []byte{10, 0, 0, 0, 'h', 'i'} // claims 10 body bytes, has 2
	if _, err := ReadRPCFrame(bytes.NewReader(short), nil); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated body: %v, want io.ErrUnexpectedEOF", err)
	}
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadRPCFrame(bytes.NewReader(huge), nil); err == nil {
		t.Error("oversized frame header accepted")
	}
	if err := WriteRPCFrame(io.Discard, make([]byte, maxRPCFrameBytes+1)); err == nil {
		t.Error("oversized frame body written")
	}
}

// --- request round trips ----------------------------------------------

// reqReader wraps a marshaled request body in the decode cursor the
// server hands to unmarshalRPC*Request, asserting the op byte.
func reqReader(t *testing.T, body []byte, want RPCOp) *wireReader {
	t.Helper()
	r := &wireReader{b: body}
	if op := RPCOp(r.u8()); op != want {
		t.Fatalf("op byte %d, want %d", op, want)
	}
	return r
}

func testDescriptor() *devsim.Descriptor {
	d := devsim.MustLookup(devsim.IntelI7).Descriptor()
	return &d
}

func TestRPCPredictRequestRoundTrip(t *testing.T) {
	for _, req := range []*PredictRequest{
		{Benchmark: "convolution", Device: devsim.IntelI7, HasIndex: true, Index: 1234},
		{Benchmark: "sgemm", Device: "", Descriptor: testDescriptor(),
			Config: map[string]int{"TILE": 16, "WPT": 4}},
		{Benchmark: "stencil", Device: "x", Config: map[string]int{"U": -3}},
	} {
		body, err := MarshalRPCPredictRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := unmarshalRPCPredictRequest(reqReader(t, body, RPCOpPredict))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Errorf("round trip\n got %+v\nwant %+v", got, req)
		}
	}
}

func TestRPCPredictBatchRequestRoundTrip(t *testing.T) {
	for _, req := range []*PredictBatchRequest{
		{Benchmark: "convolution", Device: devsim.IntelI7, Indices: []int64{0, 7, 99}},
		{Benchmark: "sgemm", Device: "d", Configs: []map[string]int{
			{"TILE": 8}, {"TILE": 32, "WPT": 2},
		}},
		{Benchmark: "b", Descriptor: testDescriptor(), Indices: []int64{}},
	} {
		body, err := MarshalRPCPredictBatchRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := unmarshalRPCPredictBatchRequest(reqReader(t, body, RPCOpPredictBatch))
		if err != nil {
			t.Fatal(err)
		}
		// Empty and nil slices are the same wire shape; normalise.
		if len(req.Indices) == 0 {
			req.Indices, got.Indices = nil, nil
		}
		if !reflect.DeepEqual(got, req) {
			t.Errorf("round trip\n got %+v\nwant %+v", got, req)
		}
	}
}

func TestRPCTopMRequestRoundTrip(t *testing.T) {
	req := &TopMRequest{Benchmark: "convolution", Device: devsim.IntelI7, M: 25}
	body, err := MarshalRPCTopMRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := unmarshalRPCTopMRequest(reqReader(t, body, RPCOpTopM))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Errorf("round trip %+v, want %+v", got, req)
	}
}

func TestRPCModelsRequestRoundTrip(t *testing.T) {
	req := &ModelsRequest{Since: 42, Benchmark: "convolution", Shard: "1/4"}
	body, err := MarshalRPCModelsRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := unmarshalRPCModelsRequest(reqReader(t, body, RPCOpModels))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Errorf("round trip %+v, want %+v", got, req)
	}
}

// --- response round trips ---------------------------------------------

func TestRPCResponseRoundTrips(t *testing.T) {
	pr := &PredictResponse{Benchmark: "convolution", Device: devsim.IntelI7,
		Resolution: resolutionExact,
		Prediction: Prediction{Index: 9, Seconds: 0.00125}}
	gotPR, err := UnmarshalRPCPredictResponse(MarshalRPCPredictResponse(pr))
	if err != nil {
		t.Fatal(err)
	}
	// Config maps deliberately do not cross the RPC wire.
	want := *pr
	want.Config = nil
	if !reflect.DeepEqual(gotPR, &want) {
		t.Errorf("predict\n got %+v\nwant %+v", gotPR, &want)
	}

	br := &PredictBatchResponse{Benchmark: "b", Device: "d", Resolution: resolutionPortable,
		Predictions: []Prediction{{Index: 1, Seconds: 2.5}, {Index: -1, Seconds: 0}}}
	gotBR, err := UnmarshalRPCPredictBatchResponse(MarshalRPCPredictBatchResponse(br))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotBR, br) {
		t.Errorf("batch\n got %+v\nwant %+v", gotBR, br)
	}

	tr := &TopMResponse{Benchmark: "b", Device: "d", Resolution: resolutionExact, M: 3,
		Top: []Prediction{{Index: 4, Seconds: 1e-6}}}
	gotTR, err := UnmarshalRPCTopMResponse(MarshalRPCTopMResponse(tr))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotTR, tr) {
		t.Errorf("topm\n got %+v\nwant %+v", gotTR, tr)
	}

	mr := &ModelsResponse{Role: RoleAll, Engine: "int16", Generation: 17,
		Models: []ModelInfo{
			{Benchmark: "convolution", Device: devsim.IntelI7, File: "convolution@Intel+i7+3770.mlt",
				Bytes: 4096, Generation: 9},
			{Benchmark: "sgemm", Device: PortableDevice, Portable: true, File: "f", Bytes: 1, Generation: 17},
		}}
	gotMR, err := UnmarshalRPCModelsResponse(MarshalRPCModelsResponse(mr))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotMR, mr) {
		t.Errorf("models\n got %+v\nwant %+v", gotMR, mr)
	}
}

func TestRPCErrorRoundTrip(t *testing.T) {
	for _, e := range []*Error{
		errf(errKindInvalid, "bad request"),
		errf(errKindNotFound, "no model"),
		errf(errKindOverloaded, "shed"), // retryable with hint
		{Kind: errKindNotOwner, Message: "shard 0/2 does not own x@y; shard 1 does",
			Owner: &OwnerRef{Shard: 1, Addr: "127.0.0.1:8080", RPCAddr: "127.0.0.1:9090"}},
	} {
		body := MarshalRPCError(e)
		_, err := UnmarshalRPCPredictResponse(body)
		var got *Error
		if !errors.As(err, &got) {
			t.Fatalf("%s: error frame decoded to %v, want *Error", e.Kind, err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Errorf("round trip\n got %+v\nwant %+v", got, e)
		}
	}
	// An unknown kind degrades to internal rather than an invalid frame.
	var got *Error
	if _, err := UnmarshalRPCTopMResponse(MarshalRPCError(&Error{Kind: "martian", Message: "m"})); !errors.As(err, &got) {
		t.Fatalf("unknown kind: %v", err)
	} else if got.Kind != errKindInternal {
		t.Errorf("unknown kind mapped to %q, want %q", got.Kind, errKindInternal)
	}
}

// --- corrupt input -----------------------------------------------------

// TestRPCCodecRejectsCorruptInput truncates and bit-flips valid messages
// at every position: decoders must return errors, never panic, and never
// accept trailing garbage.
func TestRPCCodecRejectsCorruptInput(t *testing.T) {
	preq, err := MarshalRPCPredictRequest(&PredictRequest{
		Benchmark: "convolution", Device: devsim.IntelI7,
		Config: map[string]int{"TILE": 16}})
	if err != nil {
		t.Fatal(err)
	}
	breq, err := MarshalRPCPredictBatchRequest(&PredictBatchRequest{
		Benchmark: "b", Device: "d", Indices: []int64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	decoders := map[string]func([]byte) error{
		"predict_req": func(b []byte) error {
			r := &wireReader{b: b}
			r.u8()
			_, err := unmarshalRPCPredictRequest(r)
			return err
		},
		"batch_req": func(b []byte) error {
			r := &wireReader{b: b}
			r.u8()
			_, err := unmarshalRPCPredictBatchRequest(r)
			return err
		},
		"predict_resp": func(b []byte) error {
			_, err := UnmarshalRPCPredictResponse(b)
			return err
		},
		"models_resp": func(b []byte) error {
			_, err := UnmarshalRPCModelsResponse(b)
			return err
		},
	}
	seeds := map[string][]byte{
		"predict_req": preq,
		"batch_req":   breq,
		"predict_resp": MarshalRPCPredictResponse(&PredictResponse{
			Benchmark: "b", Device: "d", Resolution: "exact",
			Prediction: Prediction{Index: 1, Seconds: 2}}),
		"models_resp": MarshalRPCModelsResponse(&ModelsResponse{
			Role: RoleServe, Engine: "float64", Generation: 3,
			Models: []ModelInfo{{Benchmark: "b", Device: "d", File: "f"}}}),
	}
	for name, decode := range decoders {
		valid := seeds[name]
		if err := decode(valid); err != nil {
			t.Fatalf("%s: valid message rejected: %v", name, err)
		}
		// Every truncation must error (prefixes are never complete).
		for n := 0; n < len(valid); n++ {
			if err := decode(valid[:n]); err == nil {
				t.Errorf("%s: accepted truncation at %d", name, n)
			}
		}
		// Trailing bytes are a protocol error.
		if err := decode(append(append([]byte{}, valid...), 0x00)); err == nil {
			t.Errorf("%s: accepted trailing byte", name)
		}
		// Bit flips must never panic (decoded garbage may legally parse).
		for i := range valid {
			mut := append([]byte{}, valid...)
			mut[i] ^= 0xFF
			decode(mut) // must not panic
		}
	}
	// A hostile batch count cannot drive allocation past the frame size.
	w := &wireWriter{}
	w.u8(uint8(RPCOpPredictBatch))
	w.str("b")
	w.str("d")
	w.str("")
	w.u8(rpcAddrIndex)
	w.u32(1 << 31)
	r := &wireReader{b: w.b}
	r.u8()
	if _, err := unmarshalRPCPredictBatchRequest(r); err == nil {
		t.Error("hostile batch count accepted")
	}
}

// FuzzRPCWire drives every decoder over one corpus: the committed seeds
// are valid frames of each message type plus truncated and corrupt
// variants, mirroring FuzzModelV3Codec. The decoders must never panic
// and valid re-encodes of what they decode must round-trip.
func FuzzRPCWire(f *testing.F) {
	preq, _ := MarshalRPCPredictRequest(&PredictRequest{
		Benchmark: "convolution", Device: devsim.IntelI7, HasIndex: true, Index: 5})
	creq, _ := MarshalRPCPredictRequest(&PredictRequest{
		Benchmark: "sgemm", Descriptor: testDescriptor(), Config: map[string]int{"TILE": 16}})
	breq, _ := MarshalRPCPredictBatchRequest(&PredictBatchRequest{
		Benchmark: "b", Device: "d", Indices: []int64{1, 2}})
	treq, _ := MarshalRPCTopMRequest(&TopMRequest{Benchmark: "b", Device: "d", M: 10})
	mreq, _ := MarshalRPCModelsRequest(&ModelsRequest{Since: 7, Shard: "0/2"})
	seeds := [][]byte{
		preq, creq, breq, treq, mreq,
		MarshalRPCPredictResponse(&PredictResponse{Benchmark: "b", Device: "d",
			Resolution: "exact", Prediction: Prediction{Index: 3, Seconds: 0.5}}),
		MarshalRPCPredictBatchResponse(&PredictBatchResponse{Benchmark: "b", Device: "d",
			Resolution: "portable", Predictions: []Prediction{{Index: 1, Seconds: 2}}}),
		MarshalRPCTopMResponse(&TopMResponse{Benchmark: "b", Device: "d", M: 1,
			Top: []Prediction{{Index: 0, Seconds: 1}}}),
		MarshalRPCModelsResponse(&ModelsResponse{Role: RoleAll, Engine: "int16", Generation: 2,
			Models: []ModelInfo{{Benchmark: "b", Device: "d", File: "f", Bytes: 10, Generation: 2}}}),
		MarshalRPCError(errf(errKindOverloaded, "shed")),
		MarshalRPCError(&Error{Kind: errKindNotOwner, Message: "m",
			Owner: &OwnerRef{Shard: 3, Addr: "a", RPCAddr: "r"}}),
	}
	for _, s := range seeds {
		f.Add(s)
		if len(s) > 2 {
			f.Add(s[:len(s)/2]) // truncated
			corrupt := append([]byte{}, s...)
			corrupt[1] ^= 0xFF
			f.Add(corrupt) // bit-flipped
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Request decoders (op byte routed like handleRPCFrame).
		r := &wireReader{b: data}
		switch RPCOp(r.u8()) {
		case RPCOpPredict:
			if req, err := unmarshalRPCPredictRequest(r); err == nil {
				if _, err := MarshalRPCPredictRequest(req); err != nil {
					t.Fatalf("re-encode: %v", err)
				}
			}
		case RPCOpPredictBatch:
			if req, err := unmarshalRPCPredictBatchRequest(r); err == nil {
				if _, err := MarshalRPCPredictBatchRequest(req); err != nil {
					t.Fatalf("re-encode: %v", err)
				}
			}
		case RPCOpTopM:
			if req, err := unmarshalRPCTopMRequest(r); err == nil {
				if _, err := MarshalRPCTopMRequest(req); err != nil {
					t.Fatalf("re-encode: %v", err)
				}
			}
		case RPCOpModels:
			if req, err := unmarshalRPCModelsRequest(r); err == nil {
				if _, err := MarshalRPCModelsRequest(req); err != nil {
					t.Fatalf("re-encode: %v", err)
				}
			}
		}
		// Response decoders must tolerate the same bytes.
		UnmarshalRPCPredictResponse(data)
		UnmarshalRPCPredictBatchResponse(data)
		UnmarshalRPCTopMResponse(data)
		UnmarshalRPCModelsResponse(data)
	})
}
