package service

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/devsim"
	"repro/internal/mmapx"
	"repro/internal/storage"
)

// TestMmapSwapLifecycle hammers the zero-copy model lifecycle under
// the race detector: predicts stay in flight while the served model is
// swapped (Put) and the registry's mapped cache is dropped (Reload),
// so every iteration races an old mapping's retirement against
// readers still scoring out of it. The properties pinned:
//
//   - no use-after-unmap: a mapping is closed only by the finalizer of
//     a model no reader can reach any more, so the hammer must never
//     fault (a violation crashes the test process);
//   - no leaked mappings: once the mapped models are unreachable, GC
//     must return mmapx.Live() to its baseline — nothing in the
//     serve cache, registry, or scratch pools may pin an arena whose
//     model was replaced.
func TestMmapSwapLifecycle(t *testing.T) {
	if testing.Short() && !raceEnabled {
		// The hammer earns its seconds under -race; plain -short runs get
		// coverage of the same paths from the functional tests.
		t.Skip("skipping mmap lifecycle hammer in -short without -race")
	}
	baseline := mmapx.Live()

	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := ModelKey{Benchmark: "convolution", Device: devsim.IntelI7}
	models := []*core.Model{trainTinyModel(t, 21), trainTinyModel(t, 22)}
	if err := reg.Put(key, models[0]); err != nil {
		t.Fatal(err)
	}
	// The int8 engine exercises the most state per model: quantised
	// tables decoded straight out of the arena, plus the int16 cascade.
	srv := newTestServer(t, reg, 1, 4, WithEngine(ann.EngineInt8))

	stop := make(chan struct{})
	errs := make(chan error, 8)
	const readers = 4
	for g := 0; g < readers; g++ {
		go func(g int) {
			idx := int64(g)
			for {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				req := PredictRequest{Benchmark: "convolution", Device: devsim.IntelI7,
					HasIndex: true, Index: idx % 64}
				if _, err := srv.Predict(&req); err != nil {
					errs <- err
					return
				}
				idx += 3
			}
		}(g)
	}

	// Swap loop: each round first drops every cached model (the next
	// predict then maps the artifact fresh from disk — the path a serve
	// replica's install takes), then replaces the artifact under the
	// readers' feet.
	deadline := time.Now().Add(3 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		if _, err := srv.ReloadModels(); err != nil {
			t.Error(err)
			break
		}
		err := srv.swapModel(key, func() error { return reg.Put(key, models[i%len(models)]) })
		if err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	for g := 0; g < readers; g++ {
		if err := <-errs; err != nil {
			t.Fatalf("reader failed mid-swap: %v", err)
		}
	}

	// Retirement: the last swap left a heap-trained model in every
	// cache, so every mapped model is now unreachable and GC must close
	// their arenas. Finalizers need GC cycles to run, so poll.
	for wait := 0; mmapx.Live() > baseline && wait < 100; wait++ {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if got := mmapx.Live(); got > baseline {
		t.Fatalf("%d mappings leaked after the swap hammer (baseline %d, live %d)", got-baseline, baseline, got)
	}
}

// TestMapperBackendServesMapped pins that a localfs-backed registry
// actually takes the zero-copy path: a v4 artifact written by Put and
// re-read after a reload serves out of a memory mapping on platforms
// that support it, and the mapping is accounted in mmapx.Live.
func TestMapperBackendServesMapped(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Backend().(storage.Mapper); !ok {
		t.Fatal("localfs backend does not implement storage.Mapper")
	}
	key := ModelKey{Benchmark: "convolution", Device: devsim.IntelI7}
	if err := reg.Put(key, trainTinyModel(t, 23)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload(); err != nil { // drop the Put-cached heap model
		t.Fatal(err)
	}
	before := mmapx.Live()
	m, err := reg.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if m.WeightFormat() != 4 {
		t.Fatalf("freshly trained model persisted as v%d, want v4", m.WeightFormat())
	}
	if runtime.GOOS == "linux" && mmapx.Live() != before+1 {
		t.Fatalf("mapped load did not register a live mapping (before %d, after %d)", before, mmapx.Live())
	}
}
