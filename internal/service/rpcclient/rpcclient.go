// Package rpcclient is the client of the mltuned RPC plane: the hot
// read path (predict, predict-batch, top-M, models-delta) over the
// length-prefixed binary protocol of a daemon's -rpc-addr listener.
//
// The client pools connections per address and follows not_owner
// redirects: on a sharded fleet it learns which shard owns each
// benchmark@device key from the redirect's owner address and sends
// subsequent requests for that key straight to the owner.
package rpcclient

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/devsim"
	"repro/internal/service"
)

// Client is a connection-pooling RPC client. Safe for concurrent use;
// concurrent calls use separate pooled connections.
type Client struct {
	addr    string
	timeout time.Duration
	maxIdle int

	mu     sync.Mutex
	closed bool
	// idle pools keep-alive connections per address (the configured
	// daemon plus any shard owners learned from redirects).
	idle map[string][]*conn
	// route memoises benchmark@device → owning shard address, learned
	// from not_owner redirects, so steady-state traffic to a sharded
	// fleet pays the redirect hop once per key, not per request.
	route map[string]string
}

// conn is one pooled connection: the socket plus its buffered reader
// (framing reads two fields; unbuffered that is two syscalls each).
type conn struct {
	c  net.Conn
	br *bufio.Reader
}

// Option customises a Client.
type Option func(*Client)

// WithTimeout bounds each call's full round trip (default 30s).
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithMaxIdle bounds the idle connections kept per address (default 16).
func WithMaxIdle(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.maxIdle = n
		}
	}
}

// New builds a client of the daemon's RPC listener at addr (host:port).
// No connection is made until the first call.
func New(addr string, opts ...Option) *Client {
	c := &Client{
		addr:    addr,
		timeout: 30 * time.Second,
		maxIdle: 16,
		idle:    make(map[string][]*conn),
		route:   make(map[string]string),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Close drops every pooled connection. In-flight calls finish on their
// own sockets.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conns := range c.idle {
		for _, pc := range conns {
			pc.c.Close()
		}
	}
	c.idle = make(map[string][]*conn)
}

// Predict predicts one configuration.
func (c *Client) Predict(req *service.PredictRequest) (*service.PredictResponse, error) {
	body, err := service.MarshalRPCPredictRequest(req)
	if err != nil {
		return nil, err
	}
	return do(c, routeKey(req.Benchmark, req.Device, req.Descriptor), body,
		service.UnmarshalRPCPredictResponse)
}

// PredictBatch predicts a batch of configurations.
func (c *Client) PredictBatch(req *service.PredictBatchRequest) (*service.PredictBatchResponse, error) {
	body, err := service.MarshalRPCPredictBatchRequest(req)
	if err != nil {
		return nil, err
	}
	return do(c, routeKey(req.Benchmark, req.Device, req.Descriptor), body,
		service.UnmarshalRPCPredictBatchResponse)
}

// TopM fetches the M best-predicted configurations.
func (c *Client) TopM(req *service.TopMRequest) (*service.TopMResponse, error) {
	body, err := service.MarshalRPCTopMRequest(req)
	if err != nil {
		return nil, err
	}
	return do(c, routeKey(req.Benchmark, req.Device, req.Descriptor), body,
		service.UnmarshalRPCTopMResponse)
}

// Models fetches the model listing or delta. Listings are answered by
// whichever instance the client is pointed at (there is no key to
// route on), so no redirect following applies.
func (c *Client) Models(req *service.ModelsRequest) (*service.ModelsResponse, error) {
	body, err := service.MarshalRPCModelsRequest(req)
	if err != nil {
		return nil, err
	}
	raw, err := c.call(c.addr, body)
	if err != nil {
		return nil, err
	}
	return service.UnmarshalRPCModelsResponse(raw)
}

// routeKey is the ownership key requests route on: the same
// benchmark@device (or benchmark@descriptor-name) string the server's
// ring hashes.
func routeKey(benchmark, device string, desc *devsim.Descriptor) string {
	label := device
	if label == "" && desc != nil {
		label = desc.Name
	}
	return benchmark + "@" + label
}

// do runs one call with single-hop redirect following: request at the
// routed address, and on a not_owner error naming an owner address,
// memoise the route and retry there once.
func do[T any](c *Client, key string, body []byte, unmarshal func([]byte) (*T, error)) (*T, error) {
	addr := c.routeFor(key)
	raw, err := c.call(addr, body)
	if err != nil {
		return nil, err
	}
	resp, err := unmarshal(raw)
	if target, ok := redirectTarget(err, addr); ok {
		c.setRoute(key, target)
		raw, err = c.call(target, body)
		if err != nil {
			return nil, err
		}
		return unmarshal(raw)
	}
	return resp, err
}

// redirectTarget extracts a followable owner address from a not_owner
// error — one that actually differs from where the request just went.
func redirectTarget(err error, from string) (string, bool) {
	var se *service.Error
	if !errors.As(err, &se) || se.Kind != service.ErrKindNotOwner {
		return "", false
	}
	if se.Owner == nil || se.Owner.RPCAddr == "" || se.Owner.RPCAddr == from {
		return "", false
	}
	return se.Owner.RPCAddr, true
}

func (c *Client) routeFor(key string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if addr, ok := c.route[key]; ok {
		return addr
	}
	return c.addr
}

func (c *Client) setRoute(key, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// The memo is per-key and keys are operator-controlled model slots,
	// not attacker-controlled: bound it anyway so a scan over bogus keys
	// cannot grow it without limit.
	if len(c.route) > 4096 {
		c.route = make(map[string]string)
	}
	c.route[key] = addr
}

// call runs one framed round trip against addr on a pooled connection.
// Transport errors drop the connection; the next call dials fresh.
func (c *Client) call(addr string, body []byte) ([]byte, error) {
	pc, err := c.conn(addr)
	if err != nil {
		return nil, err
	}
	if c.timeout > 0 {
		pc.c.SetDeadline(time.Now().Add(c.timeout))
	}
	// One write syscall per request: header and body in one buffer.
	frame := make([]byte, 4+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], body)
	if _, err := pc.c.Write(frame); err != nil {
		pc.c.Close()
		return nil, fmt.Errorf("rpc %s: %w", addr, err)
	}
	resp, err := service.ReadRPCFrame(pc.br, nil)
	if err != nil {
		pc.c.Close()
		return nil, fmt.Errorf("rpc %s: %w", addr, err)
	}
	c.putIdle(addr, pc)
	return resp, nil
}

// conn takes an idle connection to addr or dials a new one.
func (c *Client) conn(addr string) (*conn, error) {
	c.mu.Lock()
	if pool := c.idle[addr]; len(pool) > 0 {
		pc := pool[len(pool)-1]
		c.idle[addr] = pool[:len(pool)-1]
		c.mu.Unlock()
		return pc, nil
	}
	c.mu.Unlock()
	d := net.Dialer{Timeout: c.timeout}
	nc, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc %s: %w", addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &conn{c: nc, br: bufio.NewReaderSize(nc, 64<<10)}, nil
}

// putIdle returns a healthy connection to its pool.
func (c *Client) putIdle(addr string, pc *conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle[addr]) >= c.maxIdle {
		pc.c.Close()
		return
	}
	c.idle[addr] = append(c.idle[addr], pc)
}
