package rpcclient

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/devsim"
	"repro/internal/hashx"
	"repro/internal/service"
	"repro/internal/storage"
)

// trainTinyModel fits a fast model to a handful of simulated
// measurements, mirroring the service package's test helper.
func trainTinyModel(t *testing.T, seed int64) *core.Model {
	t.Helper()
	b := bench.MustLookup("convolution")
	m, err := core.NewSimMeasurer(b, devsim.MustLookup(devsim.IntelI7), bench.Size{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var samples []core.Sample
	for _, cfg := range b.Space().Sample(rng, 60) {
		secs, err := m.Measure(context.Background(), cfg)
		if err != nil {
			continue
		}
		samples = append(samples, core.Sample{Config: cfg, Seconds: secs})
	}
	mc := core.DefaultModelConfig(seed)
	mc.Ensemble.K = 2
	mc.Ensemble.Hidden = 6
	mc.Ensemble.Train.Epochs = 200
	model, err := core.TrainModel(b.Space(), samples, nil, mc)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// serveRPC builds a Server over an in-memory registry (optionally
// holding the tiny convolution model) and serves the RPC protocol on an
// ephemeral loopback listener whose address it returns. The lis
// argument lets callers pre-bind so peer addresses exist before the
// servers are constructed.
func serveRPC(t *testing.T, lis net.Listener, withModel bool, opts ...service.Option) string {
	t.Helper()
	reg, err := service.NewRegistry(storage.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	if withModel {
		key := service.ModelKey{Benchmark: "convolution", Device: devsim.IntelI7}
		if err := reg.Put(key, trainTinyModel(t, 9)); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := service.New(reg, 1, 4, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeRPC(ctx, lis)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return lis.Addr().String()
}

func listen(t *testing.T) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return lis
}

func TestClientReadPath(t *testing.T) {
	addr := serveRPC(t, listen(t), true)
	c := New(addr)
	defer c.Close()

	pr, err := c.Predict(&service.PredictRequest{
		Benchmark: "convolution", Device: devsim.IntelI7, HasIndex: true, Index: 42})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Index != 42 || pr.Benchmark != "convolution" || pr.Seconds <= 0 {
		t.Errorf("predict %+v", pr)
	}

	br, err := c.PredictBatch(&service.PredictBatchRequest{
		Benchmark: "convolution", Device: devsim.IntelI7, Indices: []int64{42, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Predictions) != 2 || br.Predictions[0].Seconds != pr.Seconds {
		t.Errorf("batch %+v", br.Predictions)
	}

	tr, err := c.TopM(&service.TopMRequest{
		Benchmark: "convolution", Device: devsim.IntelI7, M: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.M != 3 || len(tr.Top) != 3 {
		t.Errorf("topm %+v", tr)
	}

	mr, err := c.Models(&service.ModelsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Models) != 1 || mr.Models[0].Device != devsim.IntelI7 {
		t.Errorf("models %+v", mr.Models)
	}

	// Typed errors cross the wire: clients branch on Kind.
	_, err = c.Predict(&service.PredictRequest{
		Benchmark: "convolution", Device: "martian accelerator", HasIndex: true})
	var se *service.Error
	if !errors.As(err, &se) || se.Kind != service.ErrKindNotFound {
		t.Errorf("error %v, want kind %q", err, service.ErrKindNotFound)
	}
}

// TestClientFollowsNotOwnerRedirect points the client at the shard that
// does not own convolution@IntelI7 on a two-shard fleet: the first call
// must follow the not_owner redirect to the owner and succeed, and the
// memoised route must keep later calls for the key working.
func TestClientFollowsNotOwnerRedirect(t *testing.T) {
	key := service.ModelKey{Benchmark: "convolution", Device: devsim.IntelI7}
	owner := hashx.NewRing(2).Owner(key.String())

	// Bind both listeners first so every server knows the full peer set.
	lis := []net.Listener{listen(t), listen(t)}
	rpcPeers := []string{lis[0].Addr().String(), lis[1].Addr().String()}
	for shard := 0; shard < 2; shard++ {
		serveRPC(t, lis[shard], shard == owner,
			service.WithShard(shard, 2), service.WithShardPeers(nil, rpcPeers))
	}

	c := New(rpcPeers[1-owner]) // aimed at the wrong shard
	defer c.Close()
	for call := 0; call < 3; call++ {
		pr, err := c.Predict(&service.PredictRequest{
			Benchmark: "convolution", Device: devsim.IntelI7, HasIndex: true, Index: 7})
		if err != nil {
			t.Fatalf("call %d: %v", call, err)
		}
		if pr.Index != 7 {
			t.Fatalf("call %d: %+v", call, pr)
		}
	}
	tr, err := c.TopM(&service.TopMRequest{
		Benchmark: "convolution", Device: devsim.IntelI7, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Top) != 2 {
		t.Errorf("topm via redirect %+v", tr)
	}

	// The memo is per key: the learned route must be the owner.
	c.mu.Lock()
	routed := c.route["convolution@"+devsim.IntelI7]
	c.mu.Unlock()
	if routed != rpcPeers[owner] {
		t.Errorf("memoised route %q, want %q", routed, rpcPeers[owner])
	}
}

// TestClientSurfacesUnfollowableRedirect: a not_owner refusal without a
// peer set has no address to follow; the typed error reaches the caller.
func TestClientSurfacesUnfollowableRedirect(t *testing.T) {
	key := service.ModelKey{Benchmark: "convolution", Device: devsim.IntelI7}
	owner := hashx.NewRing(2).Owner(key.String())

	addr := serveRPC(t, listen(t), false, service.WithShard(1-owner, 2))
	c := New(addr)
	defer c.Close()

	_, err := c.Predict(&service.PredictRequest{
		Benchmark: "convolution", Device: devsim.IntelI7, HasIndex: true})
	var se *service.Error
	if !errors.As(err, &se) || se.Kind != service.ErrKindNotOwner {
		t.Fatalf("error %v, want kind %q", err, service.ErrKindNotOwner)
	}
	if se.Owner == nil || se.Owner.Shard != owner {
		t.Errorf("owner ref %+v, want shard %d", se.Owner, owner)
	}
}
