package service

import (
	"errors"
	"testing"

	"repro/internal/devsim"
	"repro/internal/storage"
)

// backends enumerates the storage implementations the service layer
// must behave identically over; the per-backend contract itself lives
// in storage/storagetest, this file checks the layers above it.
func backends(t *testing.T) map[string]func(t *testing.T) storage.Backend {
	return map[string]func(t *testing.T) storage.Backend{
		"localfs": func(t *testing.T) storage.Backend {
			be, err := storage.OpenLocalFS(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return be
		},
		"memory": func(t *testing.T) storage.Backend { return storage.NewMemory() },
	}
}

// TestRegistryOverBackends pins that the registry round-trips models
// identically over every backend: Put caches, a fresh registry over the
// same backend lazily re-serves the identical model, Install validates
// before persisting, and generations climb.
func TestRegistryOverBackends(t *testing.T) {
	for name, newBackend := range backends(t) {
		t.Run(name, func(t *testing.T) {
			be := newBackend(t)
			reg, err := NewRegistry(be)
			if err != nil {
				t.Fatal(err)
			}
			key := ModelKey{Benchmark: "convolution", Device: devsim.IntelI7}
			model := trainTinyModel(t, 61)
			if err := reg.Put(key, model); err != nil {
				t.Fatal(err)
			}
			if got, err := reg.Get(key); err != nil || got != model {
				t.Fatalf("Put did not cache: %v, %v", got, err)
			}
			list, gen := reg.ListSince(0)
			if len(list) != 1 || gen == 0 || list[0].Generation != gen {
				t.Fatalf("listing %+v gen %d", list, gen)
			}

			// Restart over the same backend: lazy load, same predictions.
			reg2, err := NewRegistry(be)
			if err != nil {
				t.Fatal(err)
			}
			if got := reg2.List(); len(got) != 1 || got[0].Loaded {
				t.Fatalf("restart listing %+v", got)
			}
			m2, err := reg2.Get(key)
			if err != nil {
				t.Fatal(err)
			}
			cfg := model.Space().At(0)
			if a, b := model.Predict(cfg, model.NewScratch()), m2.Predict(cfg, m2.NewScratch()); a != b {
				t.Errorf("reloaded model predicts %v, original %v", b, a)
			}

			// Install round-trip: raw bytes from one registry feed another.
			data, rawGen, err := reg.GetRaw(key)
			if err != nil || rawGen != gen {
				t.Fatalf("GetRaw: gen %d (want %d), %v", rawGen, gen, err)
			}
			gen2, err := reg.Install(key, data)
			if err != nil {
				t.Fatal(err)
			}
			if gen2 <= gen {
				t.Errorf("Install generation %d did not advance past %d", gen2, gen)
			}
			if _, err := reg.Install(key, []byte("garbage, not a model")); err == nil {
				t.Error("Install accepted a non-model artifact")
			}
			if g := reg.Generation(); g != gen2 {
				t.Errorf("rejected install moved the generation: %d, want %d", g, gen2)
			}
		})
	}
}

// TestSampleStoreOverBackends pins sample-set behaviour — append, lazy
// load, and corrupt-line tolerance — over every backend. Torn or
// malformed lines must be skipped, not fatal, whichever store holds
// them.
func TestSampleStoreOverBackends(t *testing.T) {
	for name, newBackend := range backends(t) {
		t.Run(name, func(t *testing.T) {
			be := newBackend(t)
			st, err := NewSampleStore(be)
			if err != nil {
				t.Fatal(err)
			}
			key := ModelKey{Benchmark: "convolution", Device: devsim.IntelI7}
			n, err := st.Append(key, []SampleRecord{{Index: 1, Seconds: 0.5}, {Index: 2, Seconds: 0.25}})
			if err != nil || n != 2 {
				t.Fatalf("Append: %d, %v", n, err)
			}

			// Damage the object behind the store's back: a torn line (no
			// trailing JSON), a malformed one, an out-of-range record, and
			// one good record.
			damage := []byte(`{"index":3,"sec` + "\n" +
				`not json at all` + "\n" +
				`{"index":-4,"seconds":1}` + "\n" +
				`{"index":5,"seconds":0.75}` + "\n")
			if _, err := be.Append(key.sampleFileName(), damage); err != nil {
				t.Fatal(err)
			}

			// A fresh store over the same backend loads lazily and serves
			// every record that survived.
			st2, err := NewSampleStore(be)
			if err != nil {
				t.Fatal(err)
			}
			recs, err := st2.Load(key)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 3 || recs[2].Index != 5 {
				t.Fatalf("loaded %+v, want the 3 intact records", recs)
			}
		})
	}
}

// TestSampleStoreRotationOverBackends pins that the cap-rotation path
// (an atomic Put of the trimmed object) works over every backend.
func TestSampleStoreRotationOverBackends(t *testing.T) {
	for name, newBackend := range backends(t) {
		t.Run(name, func(t *testing.T) {
			be := newBackend(t)
			st, err := NewSampleStore(be)
			if err != nil {
				t.Fatal(err)
			}
			st.cap = 10
			key := ModelKey{Benchmark: "convolution", Device: devsim.IntelI7}
			recs := make([]SampleRecord, 25)
			for i := range recs {
				recs[i] = SampleRecord{Index: int64(i), Seconds: 0.1}
			}
			n, err := st.Append(key, recs)
			if err != nil {
				t.Fatal(err)
			}
			if n != 10 {
				t.Fatalf("post-rotation count %d, want cap 10", n)
			}
			// The stored object holds exactly the newest cap records.
			st2, err := NewSampleStore(be)
			if err != nil {
				t.Fatal(err)
			}
			kept, err := st2.Load(key)
			if err != nil {
				t.Fatal(err)
			}
			if len(kept) != 10 || kept[0].Index != 15 || kept[9].Index != 24 {
				t.Fatalf("rotated set %+v, want indices 15..24", kept)
			}
		})
	}
}

// TestRegistryGetMapsNotExist pins the error mapping: a key whose
// object vanished from storage surfaces as ErrModelNotFound territory,
// not a raw storage error leaking through the API.
func TestRegistryGetMapsNotExist(t *testing.T) {
	be := storage.NewMemory()
	reg, err := NewRegistry(be)
	if err != nil {
		t.Fatal(err)
	}
	key := ModelKey{Benchmark: "convolution", Device: devsim.IntelI7}
	if err := reg.Put(key, trainTinyModel(t, 71)); err != nil {
		t.Fatal(err)
	}
	if err := be.Delete(key.fileName()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get(key); !errors.Is(err, ErrModelNotFound) {
		t.Errorf("Get after external delete + reload: %v, want ErrModelNotFound", err)
	}
}
