package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/ann"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/devsim"
	"repro/internal/tuning"
)

// ModelSpec is the JSON model configuration of training jobs. It
// mirrors core.ModelConfig with one difference: LogTransform is
// tri-state — an omitted field means the paper default (on), so an API
// client that only tunes ensemble knobs cannot silently fall into the
// ablation mode core.FillModelConfig reserves for explicitly configured
// ensembles. Pass "log_transform": false to request the ablation.
type ModelSpec struct {
	Ensemble       ann.EnsembleConfig `json:"ensemble,omitempty"`
	LogTransform   *bool              `json:"log_transform,omitempty"`
	InvalidPenalty float64            `json:"invalid_penalty,omitempty"`
}

// config resolves the spec (nil = all defaults) to a filled
// core.ModelConfig.
func (ms *ModelSpec) config(seed int64) core.ModelConfig {
	cfg := core.ModelConfig{}
	if ms != nil {
		cfg.Ensemble = ms.Ensemble
		cfg.InvalidPenalty = ms.InvalidPenalty
	}
	cfg = core.FillModelConfig(cfg, seed)
	cfg.LogTransform = ms == nil || ms.LogTransform == nil || *ms.LogTransform
	return cfg
}

// train executes one training job: load the samples (inline or from the
// store), fit the paper's model on the bounded worker pool, and
// atomically swap it into the registry. It is the queue's worker body
// for KindTrain jobs. Progress surfaces on the job's seq-numbered event
// stream as "train-progress" records, one per trained ensemble member.
// Jobs keyed device "*" train the benchmark's portable model instead,
// pooling samples across devices (see trainPortable).
func (s *Server) train(ctx context.Context, j *Job) (*core.Result, bool, error) {
	spec := j.Spec
	b, err := bench.Lookup(spec.Benchmark)
	if err != nil {
		return nil, false, err
	}
	space := b.Space()

	var samples []core.Sample
	var invalid []tuning.Config
	cfg := spec.Model.config(spec.Seed)
	cfg.Ensemble.Workers = s.trainBudget(spec.Workers)

	if spec.Key().Portable() {
		sets, err := s.pooledSets(spec)
		if err != nil {
			return nil, false, err
		}
		var devices, skipped []string
		samples, devices, skipped = pooledSamples(space, sets)
		rec := EventRecord{Kind: "pooled-devices", Stage: "train",
			Done: len(devices), Total: len(devices) + len(skipped)}
		if len(skipped) > 0 {
			rec.Error = "skipped: " + strings.Join(skipped, "; ")
		}
		j.observeRecord(rec)
		if len(devices) < 2 {
			return nil, false, fmt.Errorf("service: portable training for %s pools samples from at least 2 catalog devices, have %d %v",
				spec.Key(), len(devices), devices)
		}
		// The portable schema replaces the invalid-penalty extension:
		// validity is device-specific, so invalid records were dropped
		// per device by pooledSamples instead of being penalised.
		cfg.DeviceFeatures = true
		cfg.InvalidPenalty = 0
	} else {
		recs := spec.Samples
		if len(recs) == 0 {
			recs, err = s.samples.Load(spec.Key())
			if err != nil {
				return nil, false, err
			}
		}
		samples, invalid = splitRecords(space, recs)
	}
	if len(samples) < spec.MinSamples {
		return nil, false, fmt.Errorf("service: %d valid samples for %s, need at least %d (ingest more via POST /v1/samples)",
			len(samples), spec.Key(), spec.MinSamples)
	}

	j.observe(core.Event{Kind: core.EventStageStarted, Stage: "train"})
	s.metrics.trainSamplesUsed.Add(len(samples))
	t0 := time.Now()
	// Progress callbacks are serialised by the trainer, so the delta
	// between consecutive events is one member's training time (first
	// event measured from the training start).
	last := t0
	model, err := core.TrainModelProgress(ctx, space, samples, invalid, cfg, func(done, total int) {
		now := time.Now()
		s.metrics.trainMemberDuration.Observe(now.Sub(last).Seconds())
		last = now
		j.observeRecord(EventRecord{Kind: "train-progress", Stage: "train", Done: done, Total: total})
	})
	if err != nil {
		return nil, false, err
	}
	j.observe(core.Event{Kind: core.EventStageFinished, Stage: "train"})
	// A cancellation that raced the last member must not swap the model:
	// the client asked for the job to stop, not for a surprise deploy.
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}

	res := &core.Result{Strategy: "train", Model: model, Measured: len(samples), Invalid: len(invalid)}
	res.Cost.TrainSeconds = time.Since(t0).Seconds()
	if err := s.swapModel(spec.Key(), func() error { return s.reg.Put(spec.Key(), model) }); err != nil {
		return res, false, err
	}
	return res, true, nil
}

// trainBudget clamps a job's requested training parallelism to the
// server's worker budget (<=0 requests the full budget).
func (s *Server) trainBudget(requested int) int {
	if requested <= 0 || requested > s.trainWorkers {
		return s.trainWorkers
	}
	return requested
}

// trainPreflight reports what a training job would see before it is
// queued: the valid-sample count (inline batch, stored set, or — for a
// portable job — the pool across catalog-resolvable devices) and, for
// portable jobs, how many distinct devices contribute. The error is a
// store read failure, not a shortage; callers compare the counts to
// MinSamples and the two-device floor.
func (s *Server) trainPreflight(spec JobSpec) (n, devices int, err error) {
	b, err := bench.Lookup(spec.Benchmark)
	if err != nil {
		return 0, 0, err
	}
	space := b.Space()
	if spec.Key().Portable() {
		sets, err := s.pooledSets(spec)
		if err != nil {
			return 0, 0, err
		}
		samples, used, _ := pooledSamplesCount(space, sets)
		return samples, used, nil
	}
	recs := spec.Samples
	if len(recs) == 0 {
		recs, err = s.samples.Load(spec.Key())
		if err != nil {
			return 0, 0, err
		}
	}
	n = countValidIn(space, recs)
	if n > 0 {
		devices = 1
	}
	return n, devices, nil
}

// pooledSets groups a portable training job's records by device label:
// the inline samples by their per-record Device field, otherwise one
// stored set per device of the benchmark. The portable slot itself never
// contributes (nothing is ever stored under device "*").
func (s *Server) pooledSets(spec JobSpec) (map[string][]SampleRecord, error) {
	sets := make(map[string][]SampleRecord)
	if len(spec.Samples) > 0 {
		for _, rec := range spec.Samples {
			sets[rec.Device] = append(sets[rec.Device], rec)
		}
		return sets, nil
	}
	for _, key := range s.samples.Keys() {
		if key.Benchmark != spec.Benchmark || key.Portable() {
			continue
		}
		recs, err := s.samples.Load(key)
		if err != nil {
			return nil, err
		}
		if len(recs) > 0 {
			sets[key.Device] = recs
		}
	}
	return sets, nil
}

// catalogVector resolves a device label to its normalised feature vector
// via the devsim catalog.
func catalogVector(label string) ([]float64, error) {
	d, err := devsim.Lookup(label)
	if err != nil {
		return nil, err
	}
	desc := d.Descriptor()
	return tuning.DeviceVector(&desc, nil), nil
}

// pooledSamples resolves per-device record sets into device-featurised
// training samples: each valid record becomes a core.Sample carrying its
// device's feature vector. Devices whose labels have no catalog
// descriptor are skipped (external measurers may store sets under labels
// the daemon cannot featurise), as are devices contributing no valid
// record and all invalid-config records — validity is device-specific
// and the portable model only learns from measurements. Each skipped
// entry carries its reason, surfaced on the job's pooled-devices event.
// Devices are processed in sorted label order so the training set, and
// therefore the trained model, is deterministic.
func pooledSamples(space *tuning.Space, sets map[string][]SampleRecord) (samples []core.Sample, devices, skipped []string) {
	labels := make([]string, 0, len(sets))
	for label := range sets {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		vec, err := catalogVector(label)
		if err != nil {
			skipped = append(skipped, label+" (no descriptor in the devsim catalog)")
			continue
		}
		valid, _ := splitRecords(space, sets[label])
		if len(valid) == 0 {
			skipped = append(skipped, label+" (no valid samples)")
			continue
		}
		for _, sm := range valid {
			sm.Device = vec
			samples = append(samples, sm)
		}
		devices = append(devices, label)
	}
	return samples, devices, skipped
}

// pooledSamplesCount is pooledSamples without materialising the set —
// the preflight's cheap counting pass. It must agree with pooledSamples
// on what counts: in-space valid records from catalog-resolvable
// devices.
func pooledSamplesCount(space *tuning.Space, sets map[string][]SampleRecord) (n, devices int, skipped int) {
	for label, recs := range sets {
		if _, err := devsim.Lookup(label); err != nil {
			skipped++
			continue
		}
		v := countValidIn(space, recs)
		if v == 0 {
			skipped++
			continue
		}
		n += v
		devices++
	}
	return n, devices, skipped
}

// countValidIn counts the records that would survive splitRecords as
// training samples: in-space index, valid, positive time. Preflight
// counting must use it so a submit-time 400 and the job's own check
// agree on the same number.
func countValidIn(space *tuning.Space, recs []SampleRecord) int {
	n := 0
	for _, rec := range recs {
		if rec.Index >= 0 && rec.Index < space.Size() && !rec.Invalid && rec.Seconds > 0 {
			n++
		}
	}
	return n
}

// splitRecords resolves stored records against the space: valid records
// become training samples, invalid ones the penalty list. Records whose
// index fell outside the space (a stale file from a changed benchmark)
// are dropped.
func splitRecords(space *tuning.Space, recs []SampleRecord) (samples []core.Sample, invalid []tuning.Config) {
	for _, rec := range recs {
		if rec.Index < 0 || rec.Index >= space.Size() {
			continue
		}
		cfg := space.At(rec.Index)
		if rec.Invalid {
			invalid = append(invalid, cfg)
			continue
		}
		if rec.Seconds <= 0 {
			continue
		}
		samples = append(samples, core.Sample{Config: cfg, Seconds: rec.Seconds})
	}
	return samples, invalid
}

// feedStore appends a finished tuning job's fresh measurements to the
// sample store, so every tuning run grows the training set future
// retrains draw from. Store failures must not fail a tuning job that
// already succeeded; they surface as an event record instead.
func (s *Server) feedStore(j *Job, res *core.Result) {
	recs := recordsFromResult(res, "job:"+j.ID)
	if len(recs) == 0 {
		return
	}
	total, err := s.samples.Append(j.Spec.Key(), recs)
	rec := EventRecord{Kind: "samples-stored", Stage: "ingest", Done: len(recs), Total: total}
	if err != nil {
		rec.Error = err.Error()
	}
	j.observeRecord(rec)
}

// recordsFromResult flattens a tuning result's stage-1 and stage-2
// measurements into store records, deduplicating by index (stage-2
// candidates often overlap stage-1 samples).
func recordsFromResult(res *core.Result, source string) []SampleRecord {
	if res == nil {
		return nil
	}
	seen := make(map[int64]bool, len(res.Samples)+len(res.SecondStage))
	recs := make([]SampleRecord, 0, len(res.Samples)+len(res.SecondStage))
	add := func(samples []core.Sample) {
		for _, sm := range samples {
			idx := sm.Config.Index()
			if seen[idx] {
				continue
			}
			seen[idx] = true
			recs = append(recs, SampleRecord{Index: idx, Seconds: sm.Seconds, Source: source})
		}
	}
	add(res.Samples)
	add(res.SecondStage)
	return recs
}

// --- HTTP handlers ----------------------------------------------------

// maxIngestBatch bounds one POST /v1/samples request; clients stream
// larger sets in batches.
const maxIngestBatch = 10000

// maxIngestBytes bounds the POST /v1/samples and POST /v1/train bodies.
const maxIngestBytes = 4 << 20

// sampleInput is one ingested sample: exactly one of Index (dense space
// index) or Config (parameter map, every parameter present) identifies
// the configuration. Source, when set, overrides the request-level
// source label, so a replayed sample file keeps its provenance. Device
// names the device the measurement was taken on; it is required per
// sample on the inline batch of a portable (device "*") training job
// and informational elsewhere.
type sampleInput struct {
	Index   *int64         `json:"index,omitempty"`
	Config  map[string]int `json:"config,omitempty"`
	Seconds float64        `json:"seconds,omitempty"`
	Invalid bool           `json:"invalid,omitempty"`
	Source  string         `json:"source,omitempty"`
	Device  string         `json:"device,omitempty"`
}

// sampleIngestRequest is the POST /v1/samples body.
type sampleIngestRequest struct {
	Benchmark string        `json:"benchmark"`
	Device    string        `json:"device"`
	Source    string        `json:"source,omitempty"`
	Samples   []sampleInput `json:"samples"`
}

// resolve validates one input against the space and returns the
// canonical record.
func (in sampleInput) resolve(space *tuning.Space, source string, i int) (SampleRecord, error) {
	if (in.Index == nil) == (len(in.Config) == 0) {
		return SampleRecord{}, fmt.Errorf("sample %d: pass exactly one of index or config", i)
	}
	var idx int64
	if in.Index != nil {
		idx = *in.Index
		if idx < 0 || idx >= space.Size() {
			return SampleRecord{}, fmt.Errorf("sample %d: index %d out of range [0, %d)", i, idx, space.Size())
		}
	} else {
		cfg, err := space.FromMap(in.Config)
		if err != nil {
			return SampleRecord{}, fmt.Errorf("sample %d: %v", i, err)
		}
		idx = cfg.Index()
	}
	if !in.Invalid && in.Seconds <= 0 {
		return SampleRecord{}, fmt.Errorf("sample %d: non-positive time %g", i, in.Seconds)
	}
	if in.Source != "" {
		source = in.Source
	}
	rec := SampleRecord{Index: idx, Invalid: in.Invalid, Source: source, Device: in.Device}
	if !in.Invalid {
		rec.Seconds = in.Seconds
	}
	return rec, nil
}

func (s *Server) handleSamplesIngest(w http.ResponseWriter, r *http.Request) {
	var req sampleIngestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeAPIError(w, errf(errKindInvalid, "decoding sample batch: %v", err))
		return
	}
	resp, err := s.Ingest(&req)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSamplesList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	resp, err := s.SampleSets(q.Get("benchmark"), q.Get("device"))
	if err != nil {
		writeAPIError(w, err)
		return
	}
	// The two views keep their historical shapes: a bare array for the
	// (possibly filtered) listing, an object for the exact count.
	if resp.Exact != nil {
		writeJSON(w, http.StatusOK, resp.Exact)
		return
	}
	writeJSON(w, http.StatusOK, resp.Sets)
}

// trainRequest is the POST /v1/train body: the model key plus optional
// model configuration and inline samples. Device "*" trains the
// benchmark's portable model from every catalog device's stored samples
// (or from inline samples carrying per-record device labels).
type trainRequest struct {
	Benchmark string `json:"benchmark"`
	Device    string `json:"device"`
	// Seed drives model initialisation (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Model configures the trained model; zero-valued fields take the
	// paper defaults.
	Model *ModelSpec `json:"model,omitempty"`
	// Samples inlines the training set; when empty the job trains from
	// the persistent sample store (ingest via POST /v1/samples first).
	Samples []sampleInput `json:"samples,omitempty"`
	// MinSamples fails the job when fewer valid samples are available
	// (0 = 10).
	MinSamples int `json:"min_samples,omitempty"`
	// Workers bounds the parallel ensemble training (0 = the server's
	// -train-workers budget). Never affects the trained weights.
	Workers int `json:"workers,omitempty"`
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	var req trainRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeAPIError(w, errf(errKindInvalid, "decoding train request: %v", err))
		return
	}
	st, err := s.Train(&req)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}
