package service

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/devsim"
)

// The RPC wire format: the hot read path (predict, predict-batch,
// top-M, models-delta) over length-prefixed little-endian binary frames
// on a dedicated listener (-rpc-addr), skipping HTTP and JSON entirely.
// The format follows the persistbin codec discipline: explicit
// little-endian layout, bounds-checked cursor reads, decode limits
// before any allocation, errors — never panics — on corrupt input.
//
// Framing: every message is `u32 length | body` where length counts the
// body bytes only. One request frame yields exactly one response frame,
// in order, on one connection; clients may pipeline.
//
// Request body:  `u8 op | payload` (see RPCOp*).
// Response body: `u8 status | payload`; status 0 is success (payload is
// the op's response), anything else is an error kind code (payload is
// the encoded Error envelope — the same taxonomy HTTP renders as JSON).
//
// Strings are `u16 length | bytes`; counts are u32; integers i64 (two's
// complement u64); floats IEEE-754 u64 bits. Responses carry index +
// seconds per prediction and omit the config maps that dominate the
// HTTP response bodies — an RPC client addressing by index can derive
// the config locally, and not serialising the maps is a large part of
// the protocol's QPS headroom.

// RPCOp identifies the operation of one request frame.
type RPCOp uint8

const (
	RPCOpPredict      RPCOp = 1
	RPCOpPredictBatch RPCOp = 2
	RPCOpTopM         RPCOp = 3
	RPCOpModels       RPCOp = 4
)

// maxRPCFrameBytes bounds one frame in either direction — aligned with
// maxPredictBatchBytes so the two transports accept the same batches.
const maxRPCFrameBytes = 4 << 20

// rpcStatusOK is the response status byte of a successful call.
const rpcStatusOK = 0

// rpcKindCodes maps error kinds to their wire status codes. Codes are
// part of the protocol: append, never renumber.
var rpcKindCodes = map[string]uint8{
	errKindInvalid:     1,
	errKindNotFound:    2,
	errKindNotOwner:    3,
	errKindQueueFull:   4,
	errKindQueueClosed: 5,
	errKindOverloaded:  6,
	errKindReadOnly:    7,
	errKindNotReady:    8,
	errKindInternal:    9,
}

// rpcKindNames is the inverse of rpcKindCodes; index 0 unused.
var rpcKindNames = func() [10]string {
	var names [10]string
	for kind, code := range rpcKindCodes {
		names[code] = kind
	}
	return names
}()

// WriteRPCFrame writes one length-prefixed frame.
func WriteRPCFrame(w io.Writer, body []byte) error {
	if len(body) > maxRPCFrameBytes {
		return fmt.Errorf("rpc: frame of %d bytes exceeds the limit of %d", len(body), maxRPCFrameBytes)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadRPCFrame reads one frame body, reusing buf when it is large
// enough. io.EOF before the header means a clean connection close;
// anything partial is io.ErrUnexpectedEOF.
func ReadRPCFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxRPCFrameBytes {
		return nil, fmt.Errorf("rpc: frame of %d bytes exceeds the limit of %d", n, maxRPCFrameBytes)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// --- buffer primitives ------------------------------------------------

// wireWriter accumulates a frame body. Strings beyond the u16 length
// prefix make the error sticky; callers check err once at the end.
type wireWriter struct {
	b   []byte
	err error
}

func (w *wireWriter) u8(v uint8)   { w.b = append(w.b, v) }
func (w *wireWriter) u16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *wireWriter) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wireWriter) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wireWriter) i64(v int64)  { w.u64(uint64(v)) }
func (w *wireWriter) f64(v float64) {
	w.u64(math.Float64bits(v))
}

func (w *wireWriter) str(s string) {
	if len(s) > math.MaxUint16 {
		if w.err == nil {
			w.err = fmt.Errorf("rpc: string of %d bytes exceeds the u16 length prefix", len(s))
		}
		return
	}
	w.u16(uint16(len(s)))
	w.b = append(w.b, s...)
}

// wireReader is the bounds-checked decode cursor: every take checks the
// remaining bytes and the error is sticky, so decoders read fields
// unconditionally and check err once.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("rpc: "+format, args...)
	}
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.fail("truncated frame: need %d bytes at offset %d of %d", n, r.off, len(r.b))
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *wireReader) u8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *wireReader) u16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

func (r *wireReader) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *wireReader) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (r *wireReader) i64() int64   { return int64(r.u64()) }
func (r *wireReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *wireReader) str() string {
	n := int(r.u16())
	p := r.take(n)
	if p == nil {
		return ""
	}
	return string(p)
}

// remaining reports the undecoded byte count — decode limits use it to
// reject counts a frame cannot possibly hold before allocating.
func (r *wireReader) remaining() int { return len(r.b) - r.off }

// finish requires the frame to be fully consumed: trailing garbage is a
// protocol error, not padding.
func (r *wireReader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("rpc: %d trailing bytes after the message", len(r.b)-r.off)
	}
	return nil
}

// --- shared fragments -------------------------------------------------

// appendModelRef encodes the addressing triple every read op starts
// with: benchmark, device, and the optional inline descriptor as its
// JSON ("" = none — the JSON round-trip keeps the wire format stable
// across devsim.Descriptor field additions).
func appendModelRef(w *wireWriter, benchmark, device string, desc *devsim.Descriptor) {
	w.str(benchmark)
	w.str(device)
	if desc == nil {
		w.str("")
		return
	}
	j, err := json.Marshal(desc)
	if err != nil && w.err == nil {
		w.err = err
	}
	w.str(string(j))
}

func readModelRef(r *wireReader) (benchmark, device string, desc *devsim.Descriptor) {
	benchmark = r.str()
	device = r.str()
	if j := r.str(); j != "" && r.err == nil {
		var d devsim.Descriptor
		if err := json.Unmarshal([]byte(j), &d); err != nil {
			r.fail("descriptor: %v", err)
			return benchmark, device, nil
		}
		desc = &d
	}
	return benchmark, device, desc
}

// appendConfigMap encodes a parameter map as sorted-insensitive
// name/value pairs (order is the map's iteration order; decoders
// rebuild a map so order does not matter).
func appendConfigMap(w *wireWriter, cfg map[string]int) {
	if len(cfg) > math.MaxUint16 {
		if w.err == nil {
			w.err = fmt.Errorf("rpc: config of %d parameters exceeds the u16 count prefix", len(cfg))
		}
		return
	}
	w.u16(uint16(len(cfg)))
	for name, v := range cfg {
		w.str(name)
		w.i64(int64(v))
	}
}

func readConfigMap(r *wireReader) map[string]int {
	n := int(r.u16())
	if n == 0 || r.err != nil {
		return nil
	}
	// Each pair is at least 2 (name length) + 8 (value) bytes.
	if r.remaining() < n*10 {
		r.fail("config count %d exceeds the frame", n)
		return nil
	}
	cfg := make(map[string]int, n)
	for i := 0; i < n; i++ {
		name := r.str()
		cfg[name] = int(r.i64())
	}
	return cfg
}

// appendPredictions encodes the compact (index, seconds) pair list of
// batch and top-M responses.
func appendPredictions(w *wireWriter, preds []Prediction) {
	w.u32(uint32(len(preds)))
	for _, p := range preds {
		w.i64(p.Index)
		w.f64(p.Seconds)
	}
}

func readPredictions(r *wireReader) []Prediction {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if r.remaining() < n*16 {
		r.fail("prediction count %d exceeds the frame", n)
		return nil
	}
	preds := make([]Prediction, n)
	for i := range preds {
		preds[i] = Prediction{Index: r.i64(), Seconds: r.f64()}
	}
	return preds
}

// --- error frames -----------------------------------------------------

// MarshalRPCError encodes an error response frame: the kind's status
// byte, then message, retry contract, and the optional owner redirect.
func MarshalRPCError(e *Error) []byte {
	code, ok := rpcKindCodes[e.Kind]
	if !ok {
		code = rpcKindCodes[errKindInternal]
	}
	w := &wireWriter{}
	w.u8(code)
	w.str(e.Message)
	retryable := uint8(0)
	if e.Retryable {
		retryable = 1
	}
	w.u8(retryable)
	w.u16(uint16(min(e.RetryAfterSeconds, math.MaxUint16)))
	if e.Owner == nil {
		w.u8(0)
	} else {
		w.u8(1)
		w.u32(uint32(e.Owner.Shard))
		w.str(e.Owner.Addr)
		w.str(e.Owner.RPCAddr)
	}
	return w.b
}

// unmarshalRPCError decodes an error frame's payload after the status
// byte was consumed and mapped to kind.
func unmarshalRPCError(kind string, r *wireReader) (*Error, error) {
	e := &Error{Kind: kind}
	e.Message = r.str()
	e.Retryable = r.u8() != 0
	e.RetryAfterSeconds = int(r.u16())
	if r.u8() != 0 {
		e.Owner = &OwnerRef{Shard: int(r.u32())}
		e.Owner.Addr = r.str()
		e.Owner.RPCAddr = r.str()
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return e, nil
}

// decodeRPCStatus consumes a response frame's status byte: nil reader
// error and nil Error mean a success payload follows.
func decodeRPCStatus(r *wireReader) (*Error, error) {
	code := r.u8()
	if r.err != nil {
		return nil, r.err
	}
	if code == rpcStatusOK {
		return nil, nil
	}
	if int(code) >= len(rpcKindNames) || rpcKindNames[code] == "" {
		return nil, fmt.Errorf("rpc: unknown error status %d", code)
	}
	return unmarshalRPCError(rpcKindNames[code], r)
}

// --- predict ----------------------------------------------------------

// Request payload: modelRef | u8 mode (0 = index, 1 = config) |
// (i64 index | configMap).
const (
	rpcAddrIndex  = 0
	rpcAddrConfig = 1
)

// MarshalRPCPredictRequest encodes a predict request frame body.
func MarshalRPCPredictRequest(req *PredictRequest) ([]byte, error) {
	w := &wireWriter{}
	w.u8(uint8(RPCOpPredict))
	appendModelRef(w, req.Benchmark, req.Device, req.Descriptor)
	if req.HasIndex {
		w.u8(rpcAddrIndex)
		w.i64(req.Index)
	} else {
		w.u8(rpcAddrConfig)
		appendConfigMap(w, req.Config)
	}
	return w.b, w.err
}

// unmarshalRPCPredictRequest decodes a predict request payload (the op
// byte already consumed).
func unmarshalRPCPredictRequest(r *wireReader) (*PredictRequest, error) {
	req := &PredictRequest{}
	req.Benchmark, req.Device, req.Descriptor = readModelRef(r)
	switch mode := r.u8(); mode {
	case rpcAddrIndex:
		req.HasIndex = true
		req.Index = r.i64()
	case rpcAddrConfig:
		req.Config = readConfigMap(r)
	default:
		r.fail("unknown predict addressing mode %d", mode)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return req, nil
}

// MarshalRPCPredictResponse encodes a success predict response.
func MarshalRPCPredictResponse(resp *PredictResponse) []byte {
	w := &wireWriter{}
	w.u8(rpcStatusOK)
	w.str(resp.Benchmark)
	w.str(resp.Device)
	w.str(resp.Resolution)
	w.i64(resp.Index)
	w.f64(resp.Seconds)
	return w.b
}

// UnmarshalRPCPredictResponse decodes a predict response frame body.
// Error frames return the decoded *Error as the error value.
func UnmarshalRPCPredictResponse(body []byte) (*PredictResponse, error) {
	r := &wireReader{b: body}
	if e, err := decodeRPCStatus(r); err != nil {
		return nil, err
	} else if e != nil {
		return nil, e
	}
	resp := &PredictResponse{}
	resp.Benchmark = r.str()
	resp.Device = r.str()
	resp.Resolution = r.str()
	resp.Index = r.i64()
	resp.Seconds = r.f64()
	if err := r.finish(); err != nil {
		return nil, err
	}
	return resp, nil
}

// --- predict batch ----------------------------------------------------

// MarshalRPCPredictBatchRequest encodes a predict-batch request frame
// body: modelRef | u8 mode | (u32 count × i64 index | u32 count ×
// configMap).
func MarshalRPCPredictBatchRequest(req *PredictBatchRequest) ([]byte, error) {
	w := &wireWriter{}
	w.u8(uint8(RPCOpPredictBatch))
	appendModelRef(w, req.Benchmark, req.Device, req.Descriptor)
	if len(req.Configs) > 0 {
		w.u8(rpcAddrConfig)
		w.u32(uint32(len(req.Configs)))
		for _, cfg := range req.Configs {
			appendConfigMap(w, cfg)
		}
	} else {
		w.u8(rpcAddrIndex)
		w.u32(uint32(len(req.Indices)))
		for _, idx := range req.Indices {
			w.i64(idx)
		}
	}
	return w.b, w.err
}

func unmarshalRPCPredictBatchRequest(r *wireReader) (*PredictBatchRequest, error) {
	req := &PredictBatchRequest{}
	req.Benchmark, req.Device, req.Descriptor = readModelRef(r)
	mode := r.u8()
	n := int(r.u32())
	if r.err == nil && n > maxPredictBatch {
		// The API would reject it anyway; refusing here keeps a hostile
		// count from driving allocation.
		r.fail("batch of %d exceeds the limit of %d", n, maxPredictBatch)
	}
	switch {
	case r.err != nil:
	case mode == rpcAddrIndex:
		if r.remaining() < n*8 {
			r.fail("index count %d exceeds the frame", n)
			break
		}
		req.Indices = make([]int64, n)
		for i := range req.Indices {
			req.Indices[i] = r.i64()
		}
	case mode == rpcAddrConfig:
		if r.remaining() < n*2 {
			r.fail("config count %d exceeds the frame", n)
			break
		}
		req.Configs = make([]map[string]int, n)
		for i := range req.Configs {
			req.Configs[i] = readConfigMap(r)
		}
	default:
		r.fail("unknown predict addressing mode %d", mode)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return req, nil
}

// MarshalRPCPredictBatchResponse encodes a success batch response:
// benchmark | device | resolution | predictions.
func MarshalRPCPredictBatchResponse(resp *PredictBatchResponse) []byte {
	w := &wireWriter{}
	w.u8(rpcStatusOK)
	w.str(resp.Benchmark)
	w.str(resp.Device)
	w.str(resp.Resolution)
	appendPredictions(w, resp.Predictions)
	return w.b
}

// UnmarshalRPCPredictBatchResponse decodes a predict-batch response
// frame body; error frames return the *Error.
func UnmarshalRPCPredictBatchResponse(body []byte) (*PredictBatchResponse, error) {
	r := &wireReader{b: body}
	if e, err := decodeRPCStatus(r); err != nil {
		return nil, err
	} else if e != nil {
		return nil, e
	}
	resp := &PredictBatchResponse{}
	resp.Benchmark = r.str()
	resp.Device = r.str()
	resp.Resolution = r.str()
	resp.Predictions = readPredictions(r)
	if err := r.finish(); err != nil {
		return nil, err
	}
	return resp, nil
}

// --- top-M ------------------------------------------------------------

// MarshalRPCTopMRequest encodes a top-M request frame body:
// modelRef | u32 m.
func MarshalRPCTopMRequest(req *TopMRequest) ([]byte, error) {
	w := &wireWriter{}
	w.u8(uint8(RPCOpTopM))
	appendModelRef(w, req.Benchmark, req.Device, req.Descriptor)
	w.u32(uint32(req.M))
	return w.b, w.err
}

func unmarshalRPCTopMRequest(r *wireReader) (*TopMRequest, error) {
	req := &TopMRequest{}
	req.Benchmark, req.Device, req.Descriptor = readModelRef(r)
	req.M = int(r.u32())
	if err := r.finish(); err != nil {
		return nil, err
	}
	return req, nil
}

// MarshalRPCTopMResponse encodes a success top-M response.
func MarshalRPCTopMResponse(resp *TopMResponse) []byte {
	w := &wireWriter{}
	w.u8(rpcStatusOK)
	w.str(resp.Benchmark)
	w.str(resp.Device)
	w.str(resp.Resolution)
	w.u32(uint32(resp.M))
	appendPredictions(w, resp.Top)
	return w.b
}

// UnmarshalRPCTopMResponse decodes a top-M response frame body; error
// frames return the *Error.
func UnmarshalRPCTopMResponse(body []byte) (*TopMResponse, error) {
	r := &wireReader{b: body}
	if e, err := decodeRPCStatus(r); err != nil {
		return nil, err
	} else if e != nil {
		return nil, e
	}
	resp := &TopMResponse{}
	resp.Benchmark = r.str()
	resp.Device = r.str()
	resp.Resolution = r.str()
	resp.M = int(r.u32())
	resp.Top = readPredictions(r)
	if err := r.finish(); err != nil {
		return nil, err
	}
	return resp, nil
}

// --- models delta -----------------------------------------------------

// MarshalRPCModelsRequest encodes a models-delta request frame body:
// u64 since | str benchmark | str shard.
func MarshalRPCModelsRequest(req *ModelsRequest) ([]byte, error) {
	w := &wireWriter{}
	w.u8(uint8(RPCOpModels))
	w.u64(req.Since)
	w.str(req.Benchmark)
	w.str(req.Shard)
	return w.b, w.err
}

func unmarshalRPCModelsRequest(r *wireReader) (*ModelsRequest, error) {
	req := &ModelsRequest{}
	req.Since = r.u64()
	req.Benchmark = r.str()
	req.Shard = r.str()
	if err := r.finish(); err != nil {
		return nil, err
	}
	return req, nil
}

// MarshalRPCModelsResponse encodes a success models-delta response:
// str role | str engine | u64 generation | u32 count × (str benchmark |
// str device | str file | u8 portable | i64 bytes | u64 generation).
// The resolution order and storage name of the HTTP listing are
// documentation, not replication inputs, and stay HTTP-only.
func MarshalRPCModelsResponse(resp *ModelsResponse) []byte {
	w := &wireWriter{}
	w.u8(rpcStatusOK)
	w.str(string(resp.Role))
	w.str(resp.Engine)
	w.u64(resp.Generation)
	w.u32(uint32(len(resp.Models)))
	for _, m := range resp.Models {
		w.str(m.Benchmark)
		w.str(m.Device)
		w.str(m.File)
		portable := uint8(0)
		if m.Portable {
			portable = 1
		}
		w.u8(portable)
		w.i64(m.Bytes)
		w.u64(m.Generation)
	}
	return w.b
}

// UnmarshalRPCModelsResponse decodes a models-delta response frame
// body; error frames return the *Error. Modified timestamps do not
// cross the RPC wire.
func UnmarshalRPCModelsResponse(body []byte) (*ModelsResponse, error) {
	r := &wireReader{b: body}
	if e, err := decodeRPCStatus(r); err != nil {
		return nil, err
	} else if e != nil {
		return nil, e
	}
	resp := &ModelsResponse{}
	resp.Role = Role(r.str())
	resp.Engine = r.str()
	resp.Generation = r.u64()
	n := int(r.u32())
	if r.err == nil && n > 0 {
		// Each entry is at least 3 string prefixes + flag + two integers.
		if r.remaining() < n*23 {
			r.fail("model count %d exceeds the frame", n)
		} else {
			resp.Models = make([]ModelInfo, n)
			for i := range resp.Models {
				m := &resp.Models[i]
				m.Benchmark = r.str()
				m.Device = r.str()
				m.File = r.str()
				m.Portable = r.u8() != 0
				m.Bytes = r.i64()
				m.Generation = r.u64()
			}
		}
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return resp, nil
}
