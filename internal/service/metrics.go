package service

import (
	"net/http"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// serverMetrics is the daemon's telemetry wiring: the registry behind
// GET /metrics and GET /v1/stats, plus pre-resolved handles for every
// instrumented layer. Handles are resolved once here (or per route at
// mux registration), never on a request path — the hot path is atomic
// increments only.
type serverMetrics struct {
	reg *telemetry.Registry

	// HTTP layer. Routes are labelled with the mux pattern (method +
	// path), so GET and POST /v1/predict are distinct series.
	inflight  *telemetry.Gauge
	requests  *telemetry.CounterVec
	responses *telemetry.CounterVec
	latency   *telemetry.HistogramVec
	shed      *telemetry.CounterVec

	// Read-path load shedding.
	readInflight *telemetry.Gauge

	// Job queue (held by the Queue; methods are nil-receiver safe so a
	// bare NewQueue in tests runs unmetered).
	queue *queueMetrics

	// Model registry + serve cache.
	modelLoads *telemetry.Counter
	cache      *cacheMetrics
	// swapDuration observes model swaps end to end: registry persist (or
	// replication install) through serve-cache invalidation — the
	// install-to-servable latency the v4 zero-copy arena exists to keep
	// flat as models grow.
	swapDuration *telemetry.Histogram

	// Sample store.
	store storeMetrics

	// Training pipeline.
	trainSamplesUsed    *telemetry.Counter
	trainMemberDuration *telemetry.Histogram
}

// queueMetrics instruments the job queue. A nil *queueMetrics discards
// everything, so the queue works unmetered in tests.
type queueMetrics struct {
	depth     *telemetry.Gauge
	submitted *telemetry.Counter
	rejected  *telemetry.CounterVec
	completed *telemetry.CounterVec
	duration  *telemetry.HistogramVec
}

func (m *queueMetrics) setDepth(n int) {
	if m == nil {
		return
	}
	m.depth.Set(int64(n))
}

func (m *queueMetrics) submittedJob() {
	if m == nil {
		return
	}
	m.submitted.Inc()
}

// rejectedJob counts a submission the queue refused; reason is "full"
// or "closed".
func (m *queueMetrics) rejectedJob(reason string) {
	if m == nil {
		return
	}
	m.rejected.With(reason).Inc()
}

// jobFinished counts a job a worker ran to a terminal state and
// observes its wall-clock duration. Job completion is not a hot path,
// so the label lookups here are fine.
func (m *queueMetrics) jobFinished(kind JobKind, state JobState, dur time.Duration) {
	if m == nil {
		return
	}
	m.completed.With(string(kind), string(state)).Inc()
	m.duration.With(string(kind)).Observe(dur.Seconds())
}

// jobCanceledQueued counts a job canceled before any worker picked it
// up; there is no duration to observe.
func (m *queueMetrics) jobCanceledQueued(kind JobKind) {
	if m == nil {
		return
	}
	m.completed.With(string(kind), string(JobCanceled)).Inc()
}

// cacheMetrics instruments the serve cache. Nil-receiver safe for
// cache tests that construct newServeCache(nil).
type cacheMetrics struct {
	entryHits     *telemetry.Counter
	entryMisses   *telemetry.Counter
	bindHits      *telemetry.Counter
	bindMisses    *telemetry.Counter
	topmHits      *telemetry.Counter
	topmMisses    *telemetry.Counter
	topmSeededC   *telemetry.Counter
	invalidations *telemetry.Counter
	fallbacks     *telemetry.Counter
}

func (m *cacheMetrics) entry(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.entryHits.Inc()
	} else {
		m.entryMisses.Inc()
	}
}

func (m *cacheMetrics) bind(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.bindHits.Inc()
	} else {
		m.bindMisses.Inc()
	}
}

func (m *cacheMetrics) topm(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.topmHits.Inc()
	} else {
		m.topmMisses.Inc()
	}
}

// topmSeeded counts a top-M sweep that warm-started from a retained
// previous result instead of sweeping cold.
func (m *cacheMetrics) topmSeeded() {
	if m == nil {
		return
	}
	m.topmSeededC.Inc()
}

func (m *cacheMetrics) invalidated() {
	if m == nil {
		return
	}
	m.invalidations.Inc()
}

// engineFallback counts a model the configured serving engine refused;
// the read path serves it on the float64 reference instead.
func (m *cacheMetrics) engineFallback() {
	if m == nil {
		return
	}
	m.fallbacks.Inc()
}

// storeMetrics instruments the sample store. The zero value (all-nil
// handles) discards everything, so standalone stores run unmetered.
type storeMetrics struct {
	appended  *telemetry.Counter
	rotations *telemetry.Counter
	corrupt   *telemetry.Counter
}

// replicationMetrics instruments a serve replica's pull loop. The
// families register only when -upstream is configured, so a single-node
// or train-plane daemon's exposition is unchanged.
type replicationMetrics struct {
	syncs       *telemetry.Counter
	syncErrors  *telemetry.Counter
	installed   *telemetry.Counter
	generation  *telemetry.Gauge
	upstreamGen *telemetry.Gauge
	lastSuccess *telemetry.Gauge
}

// newReplicationMetrics declares the replication families; see the
// README's Operations section.
func newReplicationMetrics(reg *telemetry.Registry) *replicationMetrics {
	return &replicationMetrics{
		syncs: reg.Counter("mltuned_replication_syncs_total",
			"Successful replication sync rounds against the upstream."),
		syncErrors: reg.Counter("mltuned_replication_sync_errors_total",
			"Replication sync rounds that failed (poll, fetch, or install error)."),
		installed: reg.Counter("mltuned_replication_models_installed_total",
			"Model artifacts pulled from the upstream and installed locally."),
		generation: reg.Gauge("mltuned_replication_generation",
			"The replica's sync cursor: the upstream generation it has fully caught up to."),
		upstreamGen: reg.Gauge("mltuned_replication_upstream_generation",
			"The upstream's generation high-water mark as of the last poll; minus mltuned_replication_generation this is the replication lag in generations."),
		lastSuccess: reg.Gauge("mltuned_replication_last_success_timestamp_seconds",
			"Unix timestamp of the last successful sync round; alert on staleness."),
	}
}

// newServerMetrics declares every metric family the daemon exports.
// The README's Operations section documents each one; keep the two in
// sync.
func newServerMetrics() *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{reg: reg}

	m.inflight = reg.Gauge("mltuned_http_inflight_requests",
		"Requests currently being handled, across all routes.")
	m.requests = reg.CounterVec("mltuned_http_requests_total",
		"HTTP requests handled, by mux route.", "route")
	m.responses = reg.CounterVec("mltuned_http_responses_total",
		"HTTP responses, by route and status class (2xx..5xx).", "route", "class")
	m.latency = reg.HistogramVec("mltuned_http_request_duration_seconds",
		"Request latency by route, shed requests included.", nil, "route")
	m.shed = reg.CounterVec("mltuned_shed_total",
		"Read-path requests shed with 429 because -max-inflight was saturated.", "route")
	m.readInflight = reg.Gauge("mltuned_read_inflight",
		"Predict/top-M requests currently holding a -max-inflight slot.")

	m.queue = &queueMetrics{
		depth: reg.Gauge("mltuned_queue_depth",
			"Jobs waiting in the backlog (running jobs excluded)."),
		submitted: reg.Counter("mltuned_jobs_submitted_total",
			"Jobs accepted into the queue."),
		rejected: reg.CounterVec("mltuned_jobs_rejected_total",
			"Submissions refused by the queue, by reason (full, closed).", "reason"),
		completed: reg.CounterVec("mltuned_jobs_completed_total",
			"Jobs that reached a terminal state, by kind and state.", "kind", "state"),
		duration: reg.HistogramVec("mltuned_job_duration_seconds",
			"Wall-clock job duration by kind, from worker pickup to terminal state.",
			[]float64{0.1, 0.5, 1, 5, 15, 60, 300, 1800}, "kind"),
	}

	m.modelLoads = reg.Counter("mltuned_model_loads_total",
		"Models loaded from registry disk files (lazy first-use loads and post-reload reloads).")
	m.cache = &cacheMetrics{
		entryHits: reg.Counter("mltuned_serve_cache_hits_total",
			"Read-path requests served from an existing scratch-pool cache slot."),
		entryMisses: reg.Counter("mltuned_serve_cache_misses_total",
			"Read-path requests that built a fresh cache slot (cold key or replaced model)."),
		bindHits: reg.Counter("mltuned_bind_memo_hits_total",
			"Portable-model device bindings served from the bind memo."),
		bindMisses: reg.Counter("mltuned_bind_memo_misses_total",
			"Portable-model device bindings computed fresh."),
		topmHits: reg.Counter("mltuned_topm_cache_hits_total",
			"Top-M queries answered from the per-(model, M) sweep cache."),
		topmMisses: reg.Counter("mltuned_topm_cache_misses_total",
			"Top-M queries that paid a full-space sweep."),
		topmSeededC: reg.Counter("mltuned_topm_seeded_total",
			"Top-M sweeps warm-started from a retained previous result (incremental reuse or seeded screening instead of a cold sweep)."),
		invalidations: reg.Counter("mltuned_serve_cache_invalidations_total",
			"Serve-cache invalidations (model Put or registry reload)."),
		fallbacks: reg.Counter("mltuned_engine_fallbacks_total",
			"Models the configured -engine could not be applied to, served on the float64 reference instead."),
	}

	m.store = storeMetrics{
		appended: reg.Counter("mltuned_samples_appended_total",
			"Sample records durably appended to the store."),
		rotations: reg.Counter("mltuned_sample_rotations_total",
			"Sample-set rotations (atomic trim of a set past its record cap)."),
		corrupt: reg.Counter("mltuned_sample_corrupt_lines_total",
			"Sample-store lines skipped at load time (truncated or malformed JSON, out-of-range records)."),
	}

	m.swapDuration = reg.Histogram("mltuned_model_swap_duration_seconds",
		"Model swap latency, from registry persist/install start to serve-cache invalidation.",
		[]float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1})

	m.trainSamplesUsed = reg.Counter("mltuned_train_samples_used_total",
		"Valid samples consumed by training jobs.")
	m.trainMemberDuration = reg.Histogram("mltuned_train_member_duration_seconds",
		"Per-ensemble-member training duration, as observed between progress events.",
		[]float64{0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60})
	return m
}

// routeMetrics is the pre-resolved handle set for one mux route: what
// the middleware touches per request, allocation-free.
type routeMetrics struct {
	requests *telemetry.Counter
	latency  *telemetry.Histogram
	shed     *telemetry.Counter
	// classes[c] counts responses with status c00..c99; index 0 unused.
	classes [6]*telemetry.Counter
}

// route resolves (creating on first use) the handle set for a route
// label. Called at mux registration time only.
func (m *serverMetrics) route(label string) *routeMetrics {
	rm := &routeMetrics{
		requests: m.requests.With(label),
		latency:  m.latency.With(label),
		shed:     m.shed.With(label),
	}
	for c := 1; c <= 5; c++ {
		rm.classes[c] = m.responses.With(label, classLabel(c))
	}
	return rm
}

func classLabel(c int) string {
	return string([]byte{byte('0' + c), 'x', 'x'})
}

// statusWriter captures the response status code for the status-class
// counters. Instances are pooled: the middleware must not add an
// allocation per request.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

var statusWriterPool = sync.Pool{New: func() any { return new(statusWriter) }}

// instrument wraps a handler with the per-route request counter,
// in-flight gauge, latency histogram and status-class counters. Shed
// (429) responses flow through it too, so the latency histogram's
// count equals the route's request count exactly.
func (s *Server) instrument(rm *routeMetrics, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.inflight.Inc()
		start := time.Now()
		sw := statusWriterPool.Get().(*statusWriter)
		sw.ResponseWriter, sw.code = w, http.StatusOK
		h(sw, r)
		code := sw.code
		sw.ResponseWriter = nil
		statusWriterPool.Put(sw)
		s.metrics.inflight.Dec()
		rm.requests.Inc()
		rm.latency.Observe(time.Since(start).Seconds())
		if c := code / 100; c >= 1 && c <= 5 {
			rm.classes[c].Inc()
		}
	}
}

// acquireRead takes one -max-inflight slot, reporting false when the
// read path is saturated (the caller sheds). A nil semaphore means
// shedding is disabled.
func (s *Server) acquireRead() bool {
	if s.readSem == nil {
		return true
	}
	select {
	case s.readSem <- struct{}{}:
		s.metrics.readInflight.Inc()
		return true
	default:
		return false
	}
}

// releaseRead returns the slot taken by acquireRead.
func (s *Server) releaseRead() {
	if s.readSem == nil {
		return
	}
	s.metrics.readInflight.Dec()
	<-s.readSem
}

// withShed bounds a read-path handler by the -max-inflight semaphore:
// over-limit requests are shed immediately with 429 and a Retry-After
// hint instead of queueing behind a saturated prediction engine.
func (s *Server) withShed(rm *routeMetrics, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.acquireRead() {
			rm.shed.Inc()
			writeAPIError(w, errf(errKindOverloaded,
				"read path at its in-flight limit (%d), retry", cap(s.readSem)))
			return
		}
		defer s.releaseRead()
		h(w, r)
	}
}
