package service

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/hashx"
)

// Sharded ownership: a deployment can split the benchmark@device
// keyspace across n instances (-shard i/n) instead of replicating every
// model everywhere. Ownership comes from a consistent-hash ring
// (hashx.Ring) every member builds locally from the shard count alone —
// no coordinator, no assignment exchange — so all members, the
// replication filter (GET /v1/models?shard=i/n), and redirect-following
// clients agree on who owns what. Portable benchmark@* models are the
// one exception: any owned key may resolve through them, so they belong
// to (and replicate to) every shard.

// ShardInfo describes an instance's slice of the keyspace in
// /v1/stats and /v1/models responses.
type ShardInfo struct {
	Index int `json:"index"`
	Count int `json:"count"`
	// Peers/RPCPeers are the shard-indexed member addresses when the
	// instance was configured with them (WithShardPeers).
	Peers    []string `json:"peers,omitempty"`
	RPCPeers []string `json:"rpc_peers,omitempty"`
}

// ParseShard parses a shard spec "i/n" (shard index i of n, zero-based)
// as accepted by the -shard flag and the ?shard= models filter.
func ParseShard(spec string) (index, count int, err error) {
	i, n, ok := strings.Cut(spec, "/")
	if !ok {
		return 0, 0, fmt.Errorf("shard spec %q is not of the form i/n", spec)
	}
	index, err = strconv.Atoi(i)
	if err != nil {
		return 0, 0, fmt.Errorf("shard index %q: %v", i, err)
	}
	count, err = strconv.Atoi(n)
	if err != nil {
		return 0, 0, fmt.Errorf("shard count %q: %v", n, err)
	}
	if count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("shard %d/%d out of range (want 0 <= index < count)", index, count)
	}
	return index, count, nil
}

// FormatShard renders the canonical spec of shard index of count.
func FormatShard(index, count int) string {
	return strconv.Itoa(index) + "/" + strconv.Itoa(count)
}

// shardRing is one instance's view of the ownership ring: the shared
// consistent-hash ring plus which shard this instance is.
type shardRing struct {
	index int
	ring  *hashx.Ring
}

func newShardRing(index, count int) *shardRing {
	return &shardRing{index: index, ring: hashx.NewRing(count)}
}

// owner maps a key to the shard owning it.
func (r *shardRing) owner(key ModelKey) int {
	return r.ring.Owner(key.String())
}

// owns reports whether this instance's shard owns the key. Portable
// keys belong to every shard.
func (r *shardRing) owns(key ModelKey) bool {
	return key.Portable() || r.owner(key) == r.index
}

// checkOwner gates a request addressing the given key: nil when this
// instance must serve it (unsharded, or the ring assigns it here),
// otherwise a not_owner error naming the owning shard — with its
// addresses when the peer set is configured — so the client can follow
// the redirect.
func (s *Server) checkOwner(key ModelKey) *Error {
	if s.ring == nil || s.ring.owns(key) {
		return nil
	}
	owner := s.ring.owner(key)
	e := errf(errKindNotOwner, "shard %d/%d does not own %s; shard %d does",
		s.ring.index, s.ring.ring.Shards(), key, owner)
	ref := &OwnerRef{Shard: owner}
	if owner < len(s.peers) {
		ref.Addr = s.peers[owner]
	}
	if owner < len(s.rpcPeers) {
		ref.RPCAddr = s.rpcPeers[owner]
	}
	e.Owner = ref
	return e
}

// shardInfo snapshots the shard configuration for stats and model
// listings; nil when the instance is unsharded.
func (s *Server) shardInfo() *ShardInfo {
	if s.ring == nil {
		return nil
	}
	return &ShardInfo{Index: s.ring.index, Count: s.ring.ring.Shards(), Peers: s.peers, RPCPeers: s.rpcPeers}
}
