package kprofile

import "testing"

func validProfile() *Profile {
	return &Profile{
		Kernel:  "test",
		GlobalX: 256, GlobalY: 256,
		LocalX: 16, LocalY: 16,
		OutputsPerItemX: 1, OutputsPerItemY: 1,
		Flops:        1000,
		GlobalReads:  500,
		GlobalWrites: 100,
		UnrollFactor: 1,
	}
}

func TestGeometryHelpers(t *testing.T) {
	p := validProfile()
	if got := p.WorkItems(); got != 256*256 {
		t.Errorf("WorkItems = %d", got)
	}
	if got := p.WorkGroups(); got != 16*16 {
		t.Errorf("WorkGroups = %d", got)
	}
	if got := p.GroupSize(); got != 256 {
		t.Errorf("GroupSize = %d", got)
	}
	p.OutputsPerItemX, p.OutputsPerItemY = 2, 4
	if got := p.Outputs(); got != 256*256*8 {
		t.Errorf("Outputs = %d", got)
	}
}

func TestWorkGroupsZeroLocal(t *testing.T) {
	p := validProfile()
	p.LocalX = 0
	if got := p.WorkGroups(); got != 0 {
		t.Errorf("WorkGroups with zero local = %d, want 0", got)
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := validProfile().Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Profile)
	}{
		{"zero global", func(p *Profile) { p.GlobalX = 0 }},
		{"zero local", func(p *Profile) { p.LocalY = 0 }},
		{"non-dividing local", func(p *Profile) { p.LocalX = 48 }},
		{"zero outputs per item", func(p *Profile) { p.OutputsPerItemX = 0 }},
		{"negative flops", func(p *Profile) { p.Flops = -1 }},
		{"negative reads", func(p *Profile) { p.ImageReads = -2 }},
		{"zero unroll", func(p *Profile) { p.UnrollFactor = 0 }},
		{"divergence above one", func(p *Profile) { p.DivergentFraction = 1.5 }},
		{"negative divergence", func(p *Profile) { p.DivergentFraction = -0.1 }},
		{"negative local mem", func(p *Profile) { p.LocalMemBytes = -4 }},
		{"negative registers", func(p *Profile) { p.RegistersPerItem = -1 }},
	}
	for _, m := range mutations {
		p := validProfile()
		m.mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad profile", m.name)
		}
	}
}

func TestTotalMemOpsAndIntensity(t *testing.T) {
	p := validProfile()
	p.ImageReads = 50
	p.LocalReads = 25
	p.LocalWrites = 25
	p.ConstReads = 10
	if got := p.TotalMemOps(); got != 500+100+50+25+25+10 {
		t.Errorf("TotalMemOps = %g", got)
	}
	// Off-chip = 500+100+50+10 = 660.
	if got := p.ArithmeticIntensity(); got != 1000.0/660 {
		t.Errorf("ArithmeticIntensity = %g", got)
	}
	p2 := &Profile{Flops: 10}
	if got := p2.ArithmeticIntensity(); got != 0 {
		t.Errorf("ArithmeticIntensity with no traffic = %g, want 0", got)
	}
}
