// Package kprofile defines the abstract operation profile of one kernel
// launch under one tuning configuration. A Profile is the contract between
// the parameterized benchmarks (which know what work a configuration
// performs) and the device performance models (which know what that work
// costs on a given architecture).
//
// Profiles can be constructed two ways:
//
//   - analytically, by a benchmark's profile builder (fast; used by the
//     auto-tuning experiments at paper scale), or
//   - by tracing, from instrumentation counters collected while the kernel
//     actually executes on the functional OpenCL-style runtime (slow; used
//     to validate the analytic builders).
//
// All memory counts are in 4-byte elements, totalled over the entire
// NDRange launch.
package kprofile

import "fmt"

// Profile describes the work performed by one kernel launch.
type Profile struct {
	// Kernel names the kernel, e.g. "convolution".
	Kernel string

	// NDRange geometry: total work-items launched and work-group shape.
	GlobalX, GlobalY int
	LocalX, LocalY   int

	// OutputsPerItemX/Y give the per-work-item output tile shape
	// ("output pixels per thread" in the paper's Table 2).
	OutputsPerItemX, OutputsPerItemY int

	// Flops is the total count of arithmetic operations.
	Flops float64

	// Memory traffic totals, by logical OpenCL memory space.
	GlobalReads  float64
	GlobalWrites float64
	ImageReads   float64
	ConstReads   float64
	LocalReads   float64
	LocalWrites  float64

	// GlobalReadStride is the element distance between global-memory
	// addresses read by adjacent work-items in the x dimension at the same
	// instruction: 1 means perfectly coalescable, larger strides cost
	// proportionally more memory transactions on GPUs. 0 means a broadcast
	// (all lanes read the same address).
	GlobalReadStride int

	// ImageLocality2D reports whether image reads follow a 2D spatially
	// local pattern (texture-cache friendly).
	ImageLocality2D bool

	// RowAligned reports whether rows of the global data structures start
	// on transaction boundaries (the convolution benchmark's "add padding
	// to image" optimization). Misaligned rows cost one extra transaction
	// per SIMD batch.
	RowAligned bool

	// InnerIters is the total number of dominant inner-loop iterations
	// across all work-items, after unrolling (used for loop overhead).
	InnerIters float64

	// UnrollFactor is the applied unroll factor (1 = none). DriverUnroll
	// distinguishes driver-pragma unrolling (unreliable on some drivers)
	// from manual macro-based unrolling.
	UnrollFactor int
	DriverUnroll bool

	// Resource usage.
	RegistersPerItem int   // estimated registers per work-item
	LocalMemBytes    int   // local memory per work-group
	BarriersPerItem  int   // barriers executed per work-item
	WorkingSetBytes  int64 // approximate per-work-group working set

	// DivergentFraction is the average fraction of SIMD lanes idle due to
	// control-flow divergence (0 = uniform, approaches 1 = fully serial).
	DivergentFraction float64

	// Convenience flags for the memory-space tuning parameters.
	UsesImage, UsesLocal bool

	// ConfigKey is a stable hash of the originating tuning configuration,
	// used to generate deterministic per-configuration model irregularity.
	ConfigKey uint64
}

// WorkItems returns the total number of work-items in the launch.
func (p *Profile) WorkItems() int { return p.GlobalX * p.GlobalY }

// WorkGroups returns the number of work-groups in the launch.
func (p *Profile) WorkGroups() int {
	if p.LocalX == 0 || p.LocalY == 0 {
		return 0
	}
	return (p.GlobalX / p.LocalX) * (p.GlobalY / p.LocalY)
}

// GroupSize returns the number of work-items per work-group.
func (p *Profile) GroupSize() int { return p.LocalX * p.LocalY }

// Outputs returns the total number of output elements produced.
func (p *Profile) Outputs() int {
	return p.WorkItems() * p.OutputsPerItemX * p.OutputsPerItemY
}

// Validate checks internal consistency: positive geometry, local sizes
// dividing global sizes, and non-negative counters. The device models call
// this before costing a profile so that benchmark bugs surface as errors
// rather than nonsense timings.
func (p *Profile) Validate() error {
	switch {
	case p.GlobalX <= 0 || p.GlobalY <= 0:
		return fmt.Errorf("kprofile: non-positive global size %dx%d", p.GlobalX, p.GlobalY)
	case p.LocalX <= 0 || p.LocalY <= 0:
		return fmt.Errorf("kprofile: non-positive local size %dx%d", p.LocalX, p.LocalY)
	case p.GlobalX%p.LocalX != 0 || p.GlobalY%p.LocalY != 0:
		return fmt.Errorf("kprofile: local size %dx%d does not divide global size %dx%d",
			p.LocalX, p.LocalY, p.GlobalX, p.GlobalY)
	case p.OutputsPerItemX <= 0 || p.OutputsPerItemY <= 0:
		return fmt.Errorf("kprofile: non-positive outputs per item %dx%d",
			p.OutputsPerItemX, p.OutputsPerItemY)
	case p.Flops < 0 || p.GlobalReads < 0 || p.GlobalWrites < 0 ||
		p.ImageReads < 0 || p.ConstReads < 0 || p.LocalReads < 0 || p.LocalWrites < 0:
		return fmt.Errorf("kprofile: negative operation count")
	case p.UnrollFactor < 1:
		return fmt.Errorf("kprofile: unroll factor %d < 1", p.UnrollFactor)
	case p.DivergentFraction < 0 || p.DivergentFraction > 1:
		return fmt.Errorf("kprofile: divergent fraction %g outside [0,1]", p.DivergentFraction)
	case p.LocalMemBytes < 0 || p.RegistersPerItem < 0:
		return fmt.Errorf("kprofile: negative resource usage")
	}
	return nil
}

// TotalMemOps returns the total number of memory operations across all
// spaces, a rough proxy for memory-boundedness used in reports.
func (p *Profile) TotalMemOps() float64 {
	return p.GlobalReads + p.GlobalWrites + p.ImageReads + p.ConstReads +
		p.LocalReads + p.LocalWrites
}

// ArithmeticIntensity returns flops per off-chip element access
// (global + image + constant), or 0 when there is no off-chip traffic.
func (p *Profile) ArithmeticIntensity() float64 {
	off := p.GlobalReads + p.GlobalWrites + p.ImageReads + p.ConstReads
	if off == 0 {
		return 0
	}
	return p.Flops / off
}
