package devsim

import (
	"fmt"
	"sort"
)

// Canonical device names, matching the paper.
const (
	IntelI7   = "Intel i7 3770"
	NvidiaK40 = "Nvidia K40"
	AMD7970   = "AMD Radeon HD 7970"
	// Additional Nvidia generations used in the paper's Figure 7.
	NvidiaC2070  = "Nvidia C2070"
	NvidiaGTX980 = "Nvidia GTX980"
)

// intelI7Desc models an Intel i7 3770 (Ivy Bridge, 4 cores / 8 threads,
// 3.4 GHz, AVX, dual-channel DDR3-1600) under an Intel OpenCL CPU runtime:
// work-groups map to threads, work-items are implicitly vectorized 8 wide,
// and all logical memory spaces live in main memory; image sampling is
// emulated in software, which is the paper's explanation for the Intel
// scatter-plot clustering (Fig. 8).
var intelI7Desc = Descriptor{
	Name:              IntelI7,
	Vendor:            "Intel",
	Kind:              CPU,
	ComputeUnits:      8, // logical cores exposed as compute units
	SIMDWidth:         8, // AVX, 8 x float32
	ClockGHz:          3.4,
	FlopsPerLaneCycle: 1.6, // sustained, between add-only and FMA-ish mul+add

	MemBandwidthGBs: 25.6,
	MemLatencyNs:    60,
	CacheLineBytes:  64,
	LLCBytes:        8 << 20, // 8 MB L3
	// The CPU has no texture hardware: image reads are emulated.
	TexCacheBytesPerCU: 0,
	TexelsPerCUCycle:   0,
	ImageSupport:       true,
	ImageSampleCycles:  20, // software address clamp + layout + gather

	LDSBytesPerCU:    32 << 10, // Intel runtime reports 32 KB local memory
	LocalMemPerGroup: 32 << 10,
	LDSLanesPerCU:    8, // "local" memory is ordinary cached memory

	MaxWorkGroupSize: 8192, // Intel CPU runtimes allow very large groups
	RegistersPerCU:   1 << 20,
	MaxRegsPerItem:   1 << 20, // spilling is the compiler's problem; never fails
	MaxWarpsPerCU:    1 << 20,
	MaxGroupsPerCU:   1, // one group per thread at a time

	KernelLaunchOverheadUs:  25,
	GroupScheduleOverheadNs: 450,
	BarrierCycles:           0, // modeled per-item in the CPU model

	DriverUnrollReliability: 0.97,
	RoughnessSigma:          0.045,
	DriverUnrollRoughness:   0.02,
	NoiseSigma:              0.016, // long runtimes => reliable timing (paper §7)

	CompileBaseMs: 110,
	CompileVarMs:  160,
	Salt:          0x1e37c0de0001,
}

// nvidiaK40Desc models an Nvidia Tesla K40 (Kepler GK110B): 15 SMX,
// 745 MHz base, 288 GB/s GDDR5, 48 KB shared memory and a 48 KB read-only
// texture path per SMX, 64 K registers and up to 64 resident warps per SMX.
var nvidiaK40Desc = Descriptor{
	Name:              NvidiaK40,
	Vendor:            "Nvidia",
	Kind:              GPU,
	ComputeUnits:      15,
	SIMDWidth:         32,
	ClockGHz:          0.745,
	FlopsPerLaneCycle: 2, // FMA

	MemBandwidthGBs: 288,
	MemLatencyNs:    350,
	CacheLineBytes:  128,
	LLCBytes:        1536 << 10,

	TexCacheBytesPerCU: 48 << 10,
	TexelsPerCUCycle:   32, // GK110: 16 bilinear texels/clk, ~2x for unfiltered fetches
	ImageSupport:       true,
	ImageSampleCycles:  0,

	LDSBytesPerCU:    48 << 10,
	LocalMemPerGroup: 48 << 10,
	LDSLanesPerCU:    12, // Kepler's shared memory lagged its FLOP rate

	MaxWorkGroupSize: 1024,
	RegistersPerCU:   65536,
	MaxRegsPerItem:   255,
	MaxWarpsPerCU:    64,
	MaxGroupsPerCU:   16,

	KernelLaunchOverheadUs:  8,
	GroupScheduleOverheadNs: 25,
	BarrierCycles:           40,

	DriverUnrollReliability: 0.88,
	RoughnessSigma:          0.090,
	DriverUnrollRoughness:   0.05,
	NoiseSigma:              0.032,

	CompileBaseMs: 210,
	CompileVarMs:  420,
	Salt:          0x1e37c0de0040,
}

// amd7970Desc models an AMD Radeon HD 7970 (GCN Tahiti): 32 CUs,
// 925 MHz, 264 GB/s, 64 KB LDS per CU with a 32 KB per-group limit, and a
// 256-work-item group limit (the AMD runtime default), which makes many
// more configurations invalid than on the other devices (paper §7).
// Its OpenCL compiler's pragma-based loop unrolling is modeled as
// unreliable, the paper's explanation for raycasting (manual unrolling)
// being much more predictable than convolution/stereo on this device.
var amd7970Desc = Descriptor{
	Name:              AMD7970,
	Vendor:            "AMD",
	Kind:              GPU,
	ComputeUnits:      32,
	SIMDWidth:         64,
	ClockGHz:          0.925,
	FlopsPerLaneCycle: 2,

	MemBandwidthGBs: 264,
	MemLatencyNs:    330,
	CacheLineBytes:  64,
	LLCBytes:        768 << 10,

	TexCacheBytesPerCU: 16 << 10,
	TexelsPerCUCycle:   8, // GCN: 4 sampler units + L1-hit bandwidth
	ImageSupport:       true,
	ImageSampleCycles:  0,

	LDSBytesPerCU:    64 << 10,
	LocalMemPerGroup: 32 << 10,
	LDSLanesPerCU:    32,

	MaxWorkGroupSize: 256,
	RegistersPerCU:   65536,
	MaxRegsPerItem:   255,
	MaxWarpsPerCU:    40,
	MaxGroupsPerCU:   16,

	KernelLaunchOverheadUs:  10,
	GroupScheduleOverheadNs: 30,
	BarrierCycles:           35,

	DriverUnrollReliability: 0.45,
	RoughnessSigma:          0.060,
	DriverUnrollRoughness:   0.50,
	NoiseSigma:              0.035,

	CompileBaseMs: 260,
	CompileVarMs:  520,
	Salt:          0x1e37c0de7970,
}

// nvidiaC2070Desc models an Nvidia Tesla C2070 (Fermi GF100): 14 SMs,
// 1.15 GHz, 144 GB/s, 48 KB shared memory, 32 K registers and 48 resident
// warps per SM.
var nvidiaC2070Desc = Descriptor{
	Name:              NvidiaC2070,
	Vendor:            "Nvidia",
	Kind:              GPU,
	ComputeUnits:      14,
	SIMDWidth:         32,
	ClockGHz:          1.15,
	FlopsPerLaneCycle: 2,

	MemBandwidthGBs: 144,
	MemLatencyNs:    400,
	CacheLineBytes:  128,
	LLCBytes:        768 << 10,

	TexCacheBytesPerCU: 12 << 10,
	TexelsPerCUCycle:   4,
	ImageSupport:       true,
	ImageSampleCycles:  0,

	LDSBytesPerCU:    48 << 10,
	LocalMemPerGroup: 48 << 10,
	LDSLanesPerCU:    16,

	MaxWorkGroupSize: 1024,
	RegistersPerCU:   32768,
	MaxRegsPerItem:   63,
	MaxWarpsPerCU:    48,
	MaxGroupsPerCU:   8,

	KernelLaunchOverheadUs:  10,
	GroupScheduleOverheadNs: 30,
	BarrierCycles:           45,

	DriverUnrollReliability: 0.85,
	RoughnessSigma:          0.085,
	DriverUnrollRoughness:   0.06,
	NoiseSigma:              0.033,

	CompileBaseMs: 230,
	CompileVarMs:  430,
	Salt:          0x1e37c0de2070,
}

// nvidiaGTX980Desc models an Nvidia GTX980 (Maxwell GM204): 16 SMM,
// 1.126 GHz, 224 GB/s, 96 KB shared memory per SMM (48 KB per group).
// Its landscape is modeled slightly rougher than Kepler/Fermi, matching
// the paper's Figure 7 where GTX980 accuracy is marginally worse.
var nvidiaGTX980Desc = Descriptor{
	Name:              NvidiaGTX980,
	Vendor:            "Nvidia",
	Kind:              GPU,
	ComputeUnits:      16,
	SIMDWidth:         32,
	ClockGHz:          1.126,
	FlopsPerLaneCycle: 2,

	MemBandwidthGBs: 224,
	MemLatencyNs:    300,
	CacheLineBytes:  128,
	LLCBytes:        2048 << 10,

	TexCacheBytesPerCU: 24 << 10,
	TexelsPerCUCycle:   16, // GM204 unfiltered fetch rate
	ImageSupport:       true,
	ImageSampleCycles:  0,

	LDSBytesPerCU:    96 << 10,
	LocalMemPerGroup: 48 << 10,
	LDSLanesPerCU:    32,

	MaxWorkGroupSize: 1024,
	RegistersPerCU:   65536,
	MaxRegsPerItem:   255,
	MaxWarpsPerCU:    64,
	MaxGroupsPerCU:   32,

	KernelLaunchOverheadUs:  7,
	GroupScheduleOverheadNs: 20,
	BarrierCycles:           35,

	DriverUnrollReliability: 0.85,
	RoughnessSigma:          0.110,
	DriverUnrollRoughness:   0.06,
	NoiseSigma:              0.032,

	CompileBaseMs: 190,
	CompileVarMs:  380,
	Salt:          0x1e37c0de0980,
}

var catalog = map[string]Descriptor{
	IntelI7:      intelI7Desc,
	NvidiaK40:    nvidiaK40Desc,
	AMD7970:      amd7970Desc,
	NvidiaC2070:  nvidiaC2070Desc,
	NvidiaGTX980: nvidiaGTX980Desc,
}

// Names returns all catalog device names, sorted.
func Names() []string {
	names := make([]string, 0, len(catalog))
	for name := range catalog {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the device with the given catalog name.
func Lookup(name string) (*Device, error) {
	desc, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("devsim: unknown device %q (have %v)", name, Names())
	}
	return New(desc)
}

// MustLookup is Lookup but panics on error; for tests and examples.
func MustLookup(name string) *Device {
	d, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return d
}

// PaperDevices returns the three devices of the paper's main evaluation:
// the Intel CPU, the Nvidia K40 and the AMD HD 7970, in that order.
func PaperDevices() []*Device {
	return []*Device{MustLookup(IntelI7), MustLookup(NvidiaK40), MustLookup(AMD7970)}
}

// Figure7Devices returns the three Nvidia generations compared in Fig. 7.
func Figure7Devices() []*Device {
	return []*Device{MustLookup(NvidiaK40), MustLookup(NvidiaGTX980), MustLookup(NvidiaC2070)}
}
