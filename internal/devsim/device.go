package devsim

import (
	"fmt"
	"math"

	"repro/internal/kprofile"
)

// Device is a simulated OpenCL device: a descriptor plus the timing model
// matching its kind. Devices are immutable and safe for concurrent use.
type Device struct {
	desc Descriptor
}

// New validates desc and returns a Device for it.
func New(desc Descriptor) (*Device, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	return &Device{desc: desc}, nil
}

// Descriptor returns a copy of the device's architectural parameters.
func (d *Device) Descriptor() Descriptor { return d.desc }

// Name returns the device's catalog name.
func (d *Device) Name() string { return d.desc.Name }

// Kind returns CPU or GPU.
func (d *Device) Kind() Kind { return d.desc.Kind }

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("%s (%s, %d CUs, %.0f GB/s)",
		d.desc.Name, d.desc.Kind, d.desc.ComputeUnits, d.desc.MemBandwidthGBs)
}

// CheckStatic performs the device-dependent validity checks that are
// possible without compiling the kernel. It returns a *StaticError for
// invalid configurations and nil otherwise.
func (d *Device) CheckStatic(p *kprofile.Profile) error {
	if err := p.Validate(); err != nil {
		return &StaticError{Device: d.desc.Name, Reason: err.Error()}
	}
	if gs := p.GroupSize(); gs > d.desc.MaxWorkGroupSize {
		return &StaticError{
			Device: d.desc.Name,
			Reason: fmt.Sprintf("work-group size %d exceeds device maximum %d", gs, d.desc.MaxWorkGroupSize),
		}
	}
	if p.LocalMemBytes > d.desc.LocalMemLimit() {
		return &StaticError{
			Device: d.desc.Name,
			Reason: fmt.Sprintf("local memory %d B exceeds device limit %d B", p.LocalMemBytes, d.desc.LocalMemLimit()),
		}
	}
	if p.UsesImage && !d.desc.ImageSupport {
		return &StaticError{Device: d.desc.Name, Reason: "device has no image support"}
	}
	return nil
}

// TrueTime returns the deterministic execution time of p: the smooth
// architectural model multiplied by the per-configuration roughness layer,
// without measurement noise. This is what repeated measurements converge
// to, and what experiments use as ground truth.
//
// TrueTime performs the full validity pipeline: static checks, then the
// dynamic ("compile and run to find out") checks inside the timing model.
func (d *Device) TrueTime(p *kprofile.Profile) (float64, error) {
	if err := d.CheckStatic(p); err != nil {
		return 0, err
	}
	var t float64
	var err error
	switch d.desc.Kind {
	case CPU:
		t, err = cpuTime(&d.desc, p)
	default:
		t, err = gpuTime(&d.desc, p)
	}
	if err != nil {
		return 0, err
	}
	if math.IsNaN(t) || math.IsInf(t, 0) || t <= 0 {
		return 0, fmt.Errorf("devsim: %s: model produced non-finite time %v for %s", d.desc.Name, t, p.Kernel)
	}
	return t * roughness(&d.desc, p), nil
}

// Measure simulates one timed kernel run: TrueTime with measurement noise
// applied. rep distinguishes repeated measurements of the same
// configuration; the result is deterministic in (device, profile, rep).
func (d *Device) Measure(p *kprofile.Profile, rep uint64) (float64, error) {
	t, err := d.TrueTime(p)
	if err != nil {
		return 0, err
	}
	return t * noiseFactor(&d.desc, p.ConfigKey, rep), nil
}

// MeasureBest simulates the usual benchmarking protocol: run the kernel
// reps times and keep the fastest run. seed lets callers decorrelate
// repeated protocol invocations.
func (d *Device) MeasureBest(p *kprofile.Profile, reps int, seed uint64) (float64, error) {
	if reps < 1 {
		reps = 1
	}
	best := math.Inf(1)
	for r := 0; r < reps; r++ {
		t, err := d.Measure(p, seed+uint64(r))
		if err != nil {
			return 0, err
		}
		if t < best {
			best = t
		}
	}
	return best, nil
}

// CompileMs returns the simulated kernel build time in milliseconds for
// profile p: a device-dependent base plus configuration-dependent work
// (unrolled loop bodies and large per-item tiles inflate the generated
// code). Invalid configurations still pay this cost before failing, which
// is why the paper's data gathering is so much slower than model training.
func (d *Device) CompileMs(p *kprofile.Profile) float64 {
	key := combine(p.ConfigKey, combine(d.desc.Salt, 0xc0))
	size := 1 + 0.18*math.Log2(float64(p.UnrollFactor)) +
		0.10*math.Log2(float64(p.OutputsPerItemX*p.OutputsPerItemY))
	return d.desc.CompileBaseMs + d.desc.CompileVarMs*size*hash01(key)
}
