package devsim

import "repro/internal/hashx"

// Thin aliases over the shared deterministic mixing primitives; see
// package hashx for the definitions.

func hash01(key uint64) float64     { return hashx.Uniform01(key) }
func hashNormal(key uint64) float64 { return hashx.Normal(key) }
func combine(a, b uint64) uint64    { return hashx.Combine(a, b) }
