// Package devsim provides analytic performance models of the five devices
// used in the paper: an Intel i7 3770 CPU, Nvidia K40, C2070 and GTX980
// GPUs, and an AMD Radeon HD 7970 GPU.
//
// A Device turns a kernel operation profile (package kprofile) into a
// simulated execution time. The models are first-order architectural
// models in the spirit of Hong & Kim [13]: a roofline over compute,
// DRAM bandwidth, texture and local-memory throughput and memory latency,
// modulated by occupancy, coalescing, caching, SIMD lane efficiency and
// divergence, plus launch/barrier overheads. On top of the smooth model
// sit two stochastic layers:
//
//   - roughness: a deterministic, configuration-dependent irregularity
//     (hash of the configuration) standing in for driver and code-
//     generation effects that real auto-tuners cannot predict from the
//     tuning parameters (the irreducible error floor in Figs. 4-7), and
//   - noise: per-measurement multiplicative jitter standing in for timer
//     and system noise.
//
// Both layers are seeded and fully reproducible.
package devsim

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Kind distinguishes CPU-like from GPU-like devices.
type Kind int

const (
	// CPU devices map work-groups to cores and rely on implicit
	// vectorization across work-items.
	CPU Kind = iota
	// GPU devices map work-groups to compute units and work-items to
	// SIMD lanes.
	GPU
)

// String returns "CPU" or "GPU".
func (k Kind) String() string {
	if k == CPU {
		return "CPU"
	}
	return "GPU"
}

// MarshalJSON renders the kind as its string form.
func (k Kind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts "CPU"/"GPU" (any case) or the numeric 0/1 form,
// so inline descriptors in API requests can use the readable spelling.
func (k *Kind) UnmarshalJSON(b []byte) error {
	switch strings.ToLower(strings.Trim(string(b), `"`)) {
	case "cpu", "0":
		*k = CPU
	case "gpu", "1":
		*k = GPU
	default:
		return fmt.Errorf("devsim: unknown device kind %s (want \"CPU\" or \"GPU\")", b)
	}
	return nil
}

// Descriptor holds the architectural parameters of a simulated device.
// Values are taken from vendor documentation for the real hardware; fields
// that real drivers do not publish (overheads, reliabilities, noise) are
// calibrated so that the simulated landscapes reproduce the paper's
// qualitative results.
type Descriptor struct {
	Name   string `json:"name"`
	Vendor string `json:"vendor,omitempty"`
	Kind   Kind   `json:"kind"`

	// ComputeUnits is the number of OpenCL compute units: SMs on Nvidia,
	// CUs on AMD, logical cores on the CPU.
	ComputeUnits int `json:"compute_units"`
	// SIMDWidth is the warp (32), wavefront (64) or vector width (8).
	SIMDWidth int `json:"simd_width"`
	// ClockGHz is the core clock in GHz.
	ClockGHz float64 `json:"clock_ghz"`
	// FlopsPerLaneCycle is sustained arithmetic ops per lane per cycle.
	FlopsPerLaneCycle float64 `json:"flops_per_lane_cycle,omitempty"`

	// MemBandwidthGBs is peak off-chip bandwidth in GB/s.
	MemBandwidthGBs float64 `json:"mem_bandwidth_gbs"`
	// MemLatencyNs is uncontended DRAM access latency in nanoseconds.
	MemLatencyNs float64 `json:"mem_latency_ns,omitempty"`
	// CacheLineBytes is the memory transaction granularity.
	CacheLineBytes int `json:"cache_line_bytes"`
	// LLCBytes is the last-level cache capacity (L2 on GPUs).
	LLCBytes int64 `json:"llc_bytes,omitempty"`
	// TexCacheBytesPerCU is the per-compute-unit texture cache capacity;
	// zero means no dedicated texture path.
	TexCacheBytesPerCU int64 `json:"tex_cache_bytes_per_cu,omitempty"`
	// TexelsPerCUCycle is the texture-unit sampling throughput.
	TexelsPerCUCycle float64 `json:"texels_per_cu_cycle,omitempty"`
	// LDSBytesPerCU is on-chip scratchpad per compute unit; also the
	// per-work-group local memory limit unless LocalMemPerGroup is set.
	LDSBytesPerCU int `json:"lds_bytes_per_cu,omitempty"`
	// LocalMemPerGroup is the per-work-group local memory limit.
	LocalMemPerGroup int `json:"local_mem_per_group,omitempty"`
	// LDSLanesPerCU is local-memory access throughput (words per cycle).
	LDSLanesPerCU float64 `json:"lds_lanes_per_cu,omitempty"`

	// MaxWorkGroupSize is the largest allowed work-group.
	MaxWorkGroupSize int `json:"max_work_group_size"`
	// RegistersPerCU is the register-file size in 32-bit registers.
	RegistersPerCU int `json:"registers_per_cu,omitempty"`
	// MaxRegsPerItem is the per-work-item register limit; exceeding it
	// spills to scratch memory.
	MaxRegsPerItem int `json:"max_regs_per_item,omitempty"`
	// MaxWarpsPerCU limits resident warps/wavefronts (GPU occupancy).
	MaxWarpsPerCU int `json:"max_warps_per_cu,omitempty"`
	// MaxGroupsPerCU limits resident work-groups per compute unit.
	MaxGroupsPerCU int `json:"max_groups_per_cu,omitempty"`

	// ImageSupport reports whether image memory is available at all.
	ImageSupport bool `json:"image_support,omitempty"`
	// ImageSampleCycles is the per-access cost of an image read on
	// devices that emulate sampling in software (the CPU); zero for
	// hardware texture units.
	ImageSampleCycles float64 `json:"image_sample_cycles,omitempty"`

	// KernelLaunchOverheadUs is fixed per-launch host overhead.
	KernelLaunchOverheadUs float64 `json:"kernel_launch_overhead_us,omitempty"`
	// GroupScheduleOverheadNs is per-work-group scheduling cost.
	GroupScheduleOverheadNs float64 `json:"group_schedule_overhead_ns,omitempty"`
	// BarrierCycles is the per-barrier cost per work-group.
	BarrierCycles float64 `json:"barrier_cycles,omitempty"`

	// DriverUnrollReliability is the probability (over configurations)
	// that a #pragma unroll request is honoured profitably by the
	// driver's compiler; manual macro unrolling is always honoured.
	DriverUnrollReliability float64 `json:"driver_unroll_reliability,omitempty"`
	// RoughnessSigma is the lognormal sigma of the deterministic
	// per-configuration irregularity layer.
	RoughnessSigma float64 `json:"roughness_sigma,omitempty"`
	// DriverUnrollRoughness is extra irregularity applied to
	// configurations that request driver-pragma unrolling.
	DriverUnrollRoughness float64 `json:"driver_unroll_roughness,omitempty"`
	// NoiseSigma is the lognormal sigma of per-measurement jitter.
	NoiseSigma float64 `json:"noise_sigma,omitempty"`

	// CompileBaseMs and CompileVarMs model the kernel build time:
	// base plus a configuration-dependent term (heavier unrolling and
	// larger per-thread tiles take longer to compile).
	CompileBaseMs float64 `json:"compile_base_ms,omitempty"`
	CompileVarMs  float64 `json:"compile_var_ms,omitempty"`

	// Salt differentiates the stochastic layers between devices so that
	// two GPUs with identical specs still disagree on exact timings.
	Salt uint64 `json:"salt,omitempty"`
}

// Validate performs a basic sanity check of the descriptor. Device
// construction calls it so that catalog typos fail fast.
func (d *Descriptor) Validate() error {
	switch {
	case d.Name == "":
		return fmt.Errorf("devsim: descriptor missing name")
	case d.ComputeUnits <= 0:
		return fmt.Errorf("devsim: %s: non-positive compute units", d.Name)
	case d.SIMDWidth <= 0:
		return fmt.Errorf("devsim: %s: non-positive SIMD width", d.Name)
	case d.ClockGHz <= 0:
		return fmt.Errorf("devsim: %s: non-positive clock", d.Name)
	case d.MemBandwidthGBs <= 0:
		return fmt.Errorf("devsim: %s: non-positive bandwidth", d.Name)
	case d.MaxWorkGroupSize <= 0:
		return fmt.Errorf("devsim: %s: non-positive max work-group size", d.Name)
	case d.CacheLineBytes <= 0:
		return fmt.Errorf("devsim: %s: non-positive cache line", d.Name)
	case d.DriverUnrollReliability < 0 || d.DriverUnrollReliability > 1:
		return fmt.Errorf("devsim: %s: unroll reliability outside [0,1]", d.Name)
	case d.RoughnessSigma < 0 || d.NoiseSigma < 0:
		return fmt.Errorf("devsim: %s: negative sigma", d.Name)
	}
	return nil
}

// LocalMemLimit returns the per-work-group local memory limit in bytes.
func (d *Descriptor) LocalMemLimit() int {
	if d.LocalMemPerGroup > 0 {
		return d.LocalMemPerGroup
	}
	return d.LDSBytesPerCU
}
