package devsim

// coalesceFactor returns the average number of memory transactions issued
// per SIMD-batch memory instruction, normalized so that a perfectly
// coalesced access (stride 1, aligned) costs 1.0 "transaction units".
//
//   - stride 0 (broadcast): all lanes hit one address - a single
//     transaction.
//   - stride 1: lanes cover simdWidth*4 contiguous bytes =>
//     ceil(simdWidth*4/lineBytes) transactions, the best case and the
//     normalization unit.
//   - stride s > 1: lanes touch s-times more lines, saturating at one
//     transaction per lane.
//
// When rowAligned is false (the benchmark's "add padding to image"
// optimization is off and rows start misaligned), each batch touches one
// extra line, a small constant penalty.
func coalesceFactor(d *Descriptor, stride int, simdWidth int, rowAligned bool) float64 {
	elemBytes := 4.0
	line := float64(d.CacheLineBytes)
	linesBest := float64(simdWidth) * elemBytes / line
	if linesBest < 1 {
		linesBest = 1
	}
	var lines float64
	switch {
	case stride <= 0:
		lines = 1
	case float64(stride)*elemBytes >= line:
		// Every lane lands on a distinct line.
		lines = float64(simdWidth)
	default:
		lines = float64(simdWidth) * float64(stride) * elemBytes / line
		if lines < 1 {
			lines = 1
		}
	}
	if !rowAligned {
		lines++
	}
	f := lines / linesBest
	if f < 1.0/float64(simdWidth) {
		f = 1.0 / float64(simdWidth)
	}
	return f
}
