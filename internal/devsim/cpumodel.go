package devsim

import (
	"math"

	"repro/internal/kprofile"
)

// cpuTime computes the smooth execution time in seconds of profile p on
// CPU descriptor d under an OpenCL CPU runtime (work-group per thread,
// implicit vectorization across work-items in the x dimension).
//
// Differences from the GPU model that matter to the paper's results:
//
//   - All logical memory spaces live in main memory, so the memory-space
//     tuning parameters move less performance (paper §7's explanation for
//     the CPU's higher model accuracy).
//   - Image reads are emulated in software at ImageSampleCycles per
//     access, which makes image-without-local configurations dramatically
//     slower — the clustering visible in the paper's Figure 8.
//   - Work-group barriers force the runtime to strip-mine the kernel,
//     costing per-item loop restart work rather than a cheap hardware sync.
//   - Many small work-groups expose per-group scheduling overhead.
func cpuTime(d *Descriptor, p *kprofile.Profile) (float64, error) {
	clockHz := d.ClockGHz * 1e9
	groups := float64(p.WorkGroups())
	items := float64(p.WorkItems())

	// Thread-level parallelism: groups spread over logical cores; with
	// hyper-threading, 8 logical cores deliver ~5.2 physical cores' worth
	// of arithmetic throughput.
	parallel := math.Min(groups, float64(d.ComputeUnits))
	effCores := parallel
	if parallel > 4 {
		effCores = 4 + (parallel-4)*0.30
	}

	// Vectorization: the runtime packs SIMDWidth consecutive work-items
	// in x; narrower groups still vectorize partially (masked lanes and
	// remainder loops), so efficiency ramps smoothly with group width.
	// Strided gathers and divergent control flow spoil it.
	scalarEff := 1.0 / float64(d.SIMDWidth)
	vecEff := scalarEff
	if p.GlobalReadStride <= 1 && p.DivergentFraction < 0.05 {
		fill := float64(p.LocalX) / float64(d.SIMDWidth)
		if fill > 1 {
			fill = 1
		}
		vecEff = scalarEff + (0.80-scalarEff)*math.Pow(fill, 0.8)
	}

	// --- Arithmetic ------------------------------------------------------------
	loopOps := 4 * p.InnerIters // loop control is pricier without branch-free SIMT
	ilp := 1 + 0.10*math.Log2(float64(p.UnrollFactor))
	divPenalty := 1 + 1.5*p.DivergentFraction // branchy code defeats the vector units
	computeOps := (p.Flops + loopOps) * divPenalty / ilp
	computeTime := computeOps /
		(effCores * float64(d.SIMDWidth) * vecEff * d.FlopsPerLaneCycle * clockHz)

	// --- Memory ------------------------------------------------------------------
	// Every logical space is ordinary cacheable memory. Strided access
	// wastes line bandwidth exactly as on the GPU but the caches are
	// large; the per-core working set decides hit rates.
	coal := coalesceFactor(d, p.GlobalReadStride, d.SIMDWidth, p.RowAligned)
	totalReads := p.GlobalReads + p.ImageReads + p.ConstReads + p.LocalReads
	totalWrites := p.GlobalWrites + p.LocalWrites
	bytes := (totalReads*coal + totalWrites) * 4
	hit := cacheHitFraction(d.LLCBytes/int64(d.ComputeUnits), p.WorkingSetBytes, p.ImageLocality2D)
	dramBytes := bytes * (1 - hit)
	dramTime := dramBytes / (d.MemBandwidthGBs * 1e9)
	// Cache-served accesses still cost ~2 cycles per element amortized.
	cacheTime := bytes * hit / 4 * 2 / (effCores * float64(d.SIMDWidth) * vecEff * clockHz)

	// --- Local-memory emulation ---------------------------------------------------
	// On the CPU, "local" memory is ordinary memory behind extra copies
	// and strip-mined barriers: staging through it never wins (Intel's
	// optimization guides say as much), it only costs. The surcharge is
	// the scalar-issue overhead of the staging loops and fences.
	localTime := 0.0
	if p.LocalReads+p.LocalWrites > 0 {
		localTime = (p.LocalReads + p.LocalWrites) * 5 /
			(effCores * float64(d.SIMDWidth) * vecEff * clockHz)
	}

	// --- Emulated image sampling -----------------------------------------------
	// Each image read runs a software sampler (clamping, layout
	// arithmetic, gather): scalar work that cannot be vectorized well.
	samplerTime := 0.0
	if p.ImageReads > 0 {
		samplerTime = p.ImageReads * d.ImageSampleCycles / (effCores * 2 * clockHz)
	}

	// CPUs overlap compute and memory via out-of-order execution but far
	// less perfectly than a GPU hides latency; combine with a soft max.
	busy := softmaxP(2, computeTime, dramTime+cacheTime+localTime, samplerTime)

	// --- Barriers ------------------------------------------------------------------
	// Each barrier forces the runtime to suspend/resume every work-item
	// in the group (loop fission): ~6 cycles per item per barrier.
	barrierTime := float64(p.BarriersPerItem) * items * 6 / (effCores * clockHz)

	// --- Scheduling ------------------------------------------------------------------
	schedTime := groups * d.GroupScheduleOverheadNs * 1e-9 / effCores
	launchTime := d.KernelLaunchOverheadUs * 1e-6

	// Tail effect: fewer groups than cores leaves cores idle; the smooth
	// p-norm avoids wave-quantization sawtooth (absorbed by roughness).
	busy *= softmaxP(4, 1, float64(d.ComputeUnits)/groups)

	return busy + barrierTime + schedTime + launchTime, nil
}
