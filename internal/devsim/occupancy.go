package devsim

import (
	"repro/internal/kprofile"
)

// Occupancy describes how many work-groups and warps a compute unit keeps
// resident for a given kernel, and which resource limits it.
//
// Resource limits are evaluated fractionally (e.g. 2.6 groups' worth of
// LDS) rather than floor()ed: the integer quantization present on real
// hardware is one of the effects absorbed by the model's roughness layer,
// keeping the learnable part of the landscape smooth while failures
// (resident < 1) still reproduce hard launch errors.
type Occupancy struct {
	// WarpsPerGroup is the number of SIMD batches per work-group.
	WarpsPerGroup int
	// ResidentGroups is the (fractional) number of work-groups
	// simultaneously resident on one compute unit.
	ResidentGroups float64
	// ResidentWarps = ResidentGroups * WarpsPerGroup, capped at the
	// device maximum.
	ResidentWarps float64
	// Fraction is ResidentWarps / MaxWarpsPerCU, in (0, 1].
	Fraction float64
	// Limiter names the binding resource: "groups", "warps", "localmem"
	// or "registers".
	Limiter string
	// RegistersPerItem is the post-cap register usage; SpilledRegisters
	// (demand beyond MaxRegsPerItem) turn into scratch-memory traffic.
	RegistersPerItem int
	SpilledRegisters int
}

// occupancy computes the GPU occupancy of profile p on device d.
// Returns ok=false when even a single work-group exceeds the compute
// unit's registers or LDS, which surfaces to callers as a launch failure —
// the "attempt to compile and run" dynamic invalidity of paper §5.2.
func occupancy(d *Descriptor, p *kprofile.Profile) (Occupancy, bool) {
	group := p.GroupSize()
	warps := (group + d.SIMDWidth - 1) / d.SIMDWidth

	regs := p.RegistersPerItem
	spilled := 0
	if regs > d.MaxRegsPerItem {
		spilled = regs - d.MaxRegsPerItem
		regs = d.MaxRegsPerItem
	}

	resident := float64(d.MaxGroupsPerCU)
	limiter := "groups"
	if byWarps := float64(d.MaxWarpsPerCU) / float64(warps); byWarps < resident {
		resident, limiter = byWarps, "warps"
	}
	if p.LocalMemBytes > 0 {
		if byLocal := float64(d.LDSBytesPerCU) / float64(p.LocalMemBytes); byLocal < resident {
			resident, limiter = byLocal, "localmem"
		}
	}
	if regs > 0 {
		if byRegs := float64(d.RegistersPerCU) / float64(regs*group); byRegs < resident {
			resident, limiter = byRegs, "registers"
		}
	}
	if resident < 1 {
		return Occupancy{}, false
	}

	occ := Occupancy{
		WarpsPerGroup:    warps,
		ResidentGroups:   resident,
		ResidentWarps:    resident * float64(warps),
		Limiter:          limiter,
		RegistersPerItem: regs,
		SpilledRegisters: spilled,
	}
	if max := float64(d.MaxWarpsPerCU); occ.ResidentWarps > max {
		occ.ResidentWarps = max
	}
	occ.Fraction = occ.ResidentWarps / float64(d.MaxWarpsPerCU)
	if occ.Fraction > 1 {
		occ.Fraction = 1
	}
	return occ, true
}

// latencyHiding converts an occupancy fraction into the achievable share
// of peak memory bandwidth: with few resident warps there are not enough
// outstanding requests to saturate DRAM. The curve rises steeply and
// saturates around 45% occupancy, the usual rule of thumb for
// bandwidth-bound kernels.
func latencyHiding(fraction float64) float64 {
	x := fraction / 0.45
	if x > 1 {
		return 1
	}
	if x < 0.02 {
		x = 0.02
	}
	// Smooth knee: x*(2-x) rises with slope 2 at the origin and reaches
	// 1 at x=1 with zero slope.
	return x * (2 - x)
}
