package devsim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/kprofile"
)

func gpuProfile() *kprofile.Profile {
	return &kprofile.Profile{
		Kernel:  "t",
		GlobalX: 2048, GlobalY: 2048,
		LocalX: 16, LocalY: 16,
		OutputsPerItemX: 1, OutputsPerItemY: 1,
		Flops:            2048 * 2048 * 56,
		GlobalReads:      2048 * 2048 * 25,
		GlobalWrites:     2048 * 2048,
		GlobalReadStride: 1,
		RowAligned:       true,
		InnerIters:       2048 * 2048 * 25,
		UnrollFactor:     1,
		RegistersPerItem: 20,
		WorkingSetBytes:  4 * 20 * 20,
		ConfigKey:        12345,
	}
}

func TestCatalogComplete(t *testing.T) {
	names := Names()
	if len(names) != 5 {
		t.Fatalf("catalog has %d devices, want 5: %v", len(names), names)
	}
	for _, n := range []string{IntelI7, NvidiaK40, AMD7970, NvidiaC2070, NvidiaGTX980} {
		d, err := Lookup(n)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", n, err)
		}
		if d.Name() != n {
			t.Errorf("Lookup(%q).Name() = %q", n, d.Name())
		}
	}
	if _, err := Lookup("HAL 9000"); err == nil {
		t.Error("Lookup of unknown device did not fail")
	}
}

func TestPaperDevices(t *testing.T) {
	devs := PaperDevices()
	if len(devs) != 3 {
		t.Fatalf("PaperDevices returned %d", len(devs))
	}
	if devs[0].Kind() != CPU || devs[1].Kind() != GPU || devs[2].Kind() != GPU {
		t.Errorf("unexpected device kinds: %v %v %v", devs[0].Kind(), devs[1].Kind(), devs[2].Kind())
	}
}

func TestDescriptorValidate(t *testing.T) {
	desc := intelI7Desc
	if err := desc.Validate(); err != nil {
		t.Fatalf("catalog descriptor invalid: %v", err)
	}
	bad := desc
	bad.ComputeUnits = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero compute units accepted")
	}
	bad = desc
	bad.RoughnessSigma = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative sigma accepted")
	}
	bad = desc
	bad.Name = ""
	if _, err := New(bad); err == nil {
		t.Error("New accepted invalid descriptor")
	}
}

func TestTrueTimePositiveFiniteDeterministic(t *testing.T) {
	p := gpuProfile()
	for _, name := range Names() {
		d := MustLookup(name)
		t1, err := d.TrueTime(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if t1 <= 0 || math.IsInf(t1, 0) || math.IsNaN(t1) {
			t.Fatalf("%s: bad time %v", name, t1)
		}
		t2, _ := d.TrueTime(p)
		if t1 != t2 {
			t.Fatalf("%s: TrueTime not deterministic: %v vs %v", name, t1, t2)
		}
	}
}

func TestMeasureNoisyButDeterministic(t *testing.T) {
	d := MustLookup(NvidiaK40)
	p := gpuProfile()
	a, err := d.Measure(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := d.Measure(p, 2)
	if a == b {
		t.Error("different reps produced identical measurements")
	}
	a2, _ := d.Measure(p, 1)
	if a != a2 {
		t.Error("same rep produced different measurements")
	}
	base, _ := d.TrueTime(p)
	if math.Abs(a-base)/base > 0.5 {
		t.Errorf("noise too large: true=%v measured=%v", base, a)
	}
}

func TestMeasureBestIsMin(t *testing.T) {
	d := MustLookup(AMD7970)
	p := gpuProfile()
	best, err := d.MeasureBest(p, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		single, _ := d.Measure(p, 100+uint64(r))
		if single < best {
			t.Fatalf("MeasureBest %v above individual rep %v", best, single)
		}
	}
}

func TestCheckStaticWorkGroupTooLarge(t *testing.T) {
	d := MustLookup(AMD7970) // max work-group 256
	p := gpuProfile()
	p.LocalX, p.LocalY = 32, 16 // 512
	err := d.CheckStatic(p)
	if err == nil || !IsInvalid(err) {
		t.Fatalf("oversized work-group not rejected: %v", err)
	}
	if _, ok := err.(*StaticError); !ok {
		t.Errorf("want *StaticError, got %T", err)
	}
	// The same group is fine on the K40.
	if err := MustLookup(NvidiaK40).CheckStatic(p); err != nil {
		t.Errorf("512 work-items rejected on K40: %v", err)
	}
}

func TestCheckStaticLocalMem(t *testing.T) {
	d := MustLookup(NvidiaK40)
	p := gpuProfile()
	p.LocalMemBytes = 49 << 10 // over the 48 KB limit
	p.UsesLocal = true
	if err := d.CheckStatic(p); err == nil || !IsInvalid(err) {
		t.Fatalf("local memory overflow not rejected: %v", err)
	}
}

func TestLaunchFailureRegisterFile(t *testing.T) {
	// One work-group demanding more registers than the whole register
	// file must fail at launch (dynamic invalidity).
	d := MustLookup(NvidiaC2070) // 32K registers per SM, 63 regs/item max
	p := gpuProfile()
	p.LocalX, p.LocalY = 32, 32 // 1024 items
	p.RegistersPerItem = 60     // 60*1024 > 32768
	_, err := d.TrueTime(p)
	if err == nil || !IsInvalid(err) {
		t.Fatalf("register-file overflow not rejected: %v", err)
	}
	if _, ok := err.(*LaunchError); !ok {
		t.Errorf("want *LaunchError, got %T", err)
	}
}

func TestIsInvalid(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&StaticError{Device: "d", Reason: "r"}, true},
		{&BuildError{Device: "d", Reason: "r"}, true},
		{&LaunchError{Device: "d", Reason: "r"}, true},
		{errFake{}, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsInvalid(c.err); got != c.want {
			t.Errorf("IsInvalid(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

type errFake struct{}

func (errFake) Error() string { return "fake" }

func TestErrorStrings(t *testing.T) {
	for _, e := range []error{
		&StaticError{Device: "dev", Reason: "why"},
		&BuildError{Device: "dev", Reason: "why"},
		&LaunchError{Device: "dev", Reason: "why"},
	} {
		s := e.Error()
		if !strings.Contains(s, "dev") || !strings.Contains(s, "why") {
			t.Errorf("error string %q lacks device or reason", s)
		}
	}
}

func TestOccupancyBounds(t *testing.T) {
	d := nvidiaK40Desc
	p := gpuProfile()
	occ, ok := occupancy(&d, p)
	if !ok {
		t.Fatal("occupancy failed for modest kernel")
	}
	if occ.Fraction <= 0 || occ.Fraction > 1 {
		t.Errorf("occupancy fraction %v outside (0,1]", occ.Fraction)
	}
	if occ.ResidentGroups < 1 {
		t.Errorf("resident groups %v < 1", occ.ResidentGroups)
	}
	if occ.WarpsPerGroup != 8 {
		t.Errorf("warps per group = %d, want 8 (256/32)", occ.WarpsPerGroup)
	}
}

func TestOccupancyLocalMemLimiter(t *testing.T) {
	d := nvidiaK40Desc
	p := gpuProfile()
	p.LocalMemBytes = 24 << 10 // two groups' worth of 48 KB
	occ, ok := occupancy(&d, p)
	if !ok {
		t.Fatal("occupancy failed")
	}
	if occ.Limiter != "localmem" {
		t.Errorf("limiter = %q, want localmem", occ.Limiter)
	}
	if occ.ResidentGroups != 2 {
		t.Errorf("resident groups = %v, want 2", occ.ResidentGroups)
	}
}

func TestOccupancySpill(t *testing.T) {
	d := nvidiaK40Desc
	p := gpuProfile()
	p.RegistersPerItem = 300 // above the 255 cap
	occ, ok := occupancy(&d, p)
	if !ok {
		t.Fatal("occupancy failed")
	}
	if occ.SpilledRegisters != 45 || occ.RegistersPerItem != 255 {
		t.Errorf("spill accounting: spilled=%d capped=%d", occ.SpilledRegisters, occ.RegistersPerItem)
	}
}

func TestLatencyHidingMonotone(t *testing.T) {
	prev := -1.0
	for f := 0.01; f <= 1.0; f += 0.01 {
		v := latencyHiding(f)
		if v < prev {
			t.Fatalf("latencyHiding not monotone at %v", f)
		}
		if v <= 0 || v > 1 {
			t.Fatalf("latencyHiding(%v) = %v outside (0,1]", f, v)
		}
		prev = v
	}
	if latencyHiding(1.0) != 1 {
		t.Error("full occupancy must reach peak bandwidth")
	}
}

func TestCoalesceFactorProperties(t *testing.T) {
	d := &nvidiaK40Desc
	base := coalesceFactor(d, 1, 32, true)
	if base != 1 {
		t.Errorf("unit stride aligned = %v, want 1", base)
	}
	// Monotone in stride.
	prev := 0.0
	for stride := 1; stride <= 64; stride *= 2 {
		f := coalesceFactor(d, stride, 32, true)
		if f < prev {
			t.Fatalf("coalesce factor not monotone at stride %d", stride)
		}
		prev = f
	}
	// Saturates at one transaction per lane.
	if f := coalesceFactor(d, 1024, 32, true); f != 32 {
		t.Errorf("huge stride factor = %v, want 32", f)
	}
	// Broadcast cheaper than or equal to coalesced.
	if f := coalesceFactor(d, 0, 32, true); f > 1 {
		t.Errorf("broadcast factor = %v > 1", f)
	}
	// Misalignment costs extra.
	if coalesceFactor(d, 1, 32, false) <= coalesceFactor(d, 1, 32, true) {
		t.Error("misaligned access not penalized")
	}
}

func TestCacheHitFraction(t *testing.T) {
	if h := cacheHitFraction(1<<20, 1<<19, false); h != 0.95 {
		t.Errorf("fitting working set hit = %v, want 0.95", h)
	}
	// Monotone decreasing in working set.
	prev := 1.0
	for ws := int64(1 << 20); ws <= 1<<30; ws *= 4 {
		h := cacheHitFraction(1<<20, ws, false)
		if h > prev {
			t.Fatalf("hit fraction increased at ws=%d", ws)
		}
		prev = h
	}
	// 2D locality degrades more slowly.
	if cacheHitFraction(1<<20, 1<<24, true) <= cacheHitFraction(1<<20, 1<<24, false) {
		t.Error("2D locality not rewarded")
	}
	if h := cacheHitFraction(0, 100, false); h != 0 {
		t.Errorf("zero-capacity cache hit = %v", h)
	}
}

func TestRoughnessDeterministicAndCentered(t *testing.T) {
	d := &amd7970Desc
	p := gpuProfile()
	p.DriverUnroll = false
	a := roughness(d, p)
	if a != roughness(d, p) {
		t.Error("roughness not deterministic")
	}
	// Over many configs the mean factor should be near 1.
	sum := 0.0
	n := 2000
	for i := 0; i < n; i++ {
		q := *p
		q.ConfigKey = uint64(i) * 7919
		sum += roughness(d, &q)
	}
	mean := sum / float64(n)
	if mean < 0.97 || mean > 1.05 {
		t.Errorf("roughness mean = %v, want near 1", mean)
	}
}

func TestDriverUnrollRoughnessPenalty(t *testing.T) {
	d := &amd7970Desc
	// Unrolled driver-pragma configs on AMD must be rougher on average
	// than non-unrolled ones, and the misfire must never speed things up.
	n := 3000
	var sumPlain, sumUnrolled float64
	for i := 0; i < n; i++ {
		p := gpuProfile()
		p.ConfigKey = uint64(i) * 2654435761
		base := roughness(d, p)
		sumPlain += base
		p.DriverUnroll = true
		p.UnrollFactor = 4
		ru := roughness(d, p)
		sumUnrolled += ru
		if ru < base*0.999 {
			t.Fatalf("config %d: unroll misfire produced a speedup (%v < %v)", i, ru, base)
		}
	}
	if sumUnrolled <= sumPlain {
		t.Error("driver unrolling on AMD not penalized on average")
	}
}

func TestCompileMsPositiveAndConfigDependent(t *testing.T) {
	d := MustLookup(NvidiaK40)
	p := gpuProfile()
	c1 := d.CompileMs(p)
	if c1 <= 0 {
		t.Fatalf("compile time %v", c1)
	}
	p2 := gpuProfile()
	p2.ConfigKey = 999
	if d.CompileMs(p2) == c1 {
		t.Error("compile time identical across configs")
	}
}

func TestCPUFasterWithMoreGroups(t *testing.T) {
	// One work-group cannot use 8 cores; many groups can.
	d := MustLookup(IntelI7)
	single := gpuProfile()
	single.GlobalX, single.GlobalY = 64, 64
	single.LocalX, single.LocalY = 64, 64
	many := gpuProfile()
	many.GlobalX, many.GlobalY = 64, 64
	many.LocalX, many.LocalY = 8, 8
	ts, err := d.TrueTime(single)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := d.TrueTime(many)
	if err != nil {
		t.Fatal(err)
	}
	if tm >= ts {
		t.Errorf("64 groups (%v) not faster than 1 group (%v) on 8-core CPU", tm, ts)
	}
}

func TestGPUCoalescingMatters(t *testing.T) {
	// A strided kernel must be slower than a unit-stride one on a
	// bandwidth-bound profile.
	d := MustLookup(NvidiaK40)
	unit := gpuProfile()
	strided := gpuProfile()
	strided.GlobalReadStride = 32
	tu, _ := d.TrueTime(unit)
	ts, _ := d.TrueTime(strided)
	if ts <= tu {
		t.Errorf("strided (%v) not slower than coalesced (%v)", ts, tu)
	}
}

func TestCPUImageSamplerPenalty(t *testing.T) {
	// Image reads on the CPU are emulated and must cost clearly more
	// than the same reads from a buffer (the paper's Figure 8 cluster).
	d := MustLookup(IntelI7)
	buf := gpuProfile()
	img := gpuProfile()
	img.ImageReads = img.GlobalReads
	img.GlobalReads = 0
	img.UsesImage = true
	tb, _ := d.TrueTime(buf)
	ti, _ := d.TrueTime(img)
	if ti < tb*2 {
		t.Errorf("CPU image sampling (%v) not clearly slower than buffers (%v)", ti, tb)
	}
	// On the K40 the texture path must not carry the CPU's penalty.
	k := MustLookup(NvidiaK40)
	tbk, _ := k.TrueTime(buf)
	tik, _ := k.TrueTime(img)
	if tik > tbk*2 {
		t.Errorf("K40 image path (%v) unexpectedly catastrophic vs buffers (%v)", tik, tbk)
	}
}
