package devsim

import (
	"math"

	"repro/internal/kprofile"
)

// gpuTime computes the smooth (roughness- and noise-free) execution time in
// seconds of profile p on GPU descriptor d. It returns a *LaunchError when
// the kernel cannot run at all (dynamic invalidity).
//
// Structure: a smoothed roofline over five potential bottlenecks —
// arithmetic, DRAM bandwidth, memory latency, texture sampling and local
// memory — plus serial overheads (launch, group scheduling, barriers) and
// a tail-effect correction when the grid does not fill whole waves.
func gpuTime(d *Descriptor, p *kprofile.Profile) (float64, error) {
	occ, ok := occupancy(d, p)
	if !ok {
		return 0, &LaunchError{Device: d.Name, Reason: "work-group exceeds on-chip resources"}
	}

	clockHz := d.ClockGHz * 1e9
	cu := float64(d.ComputeUnits)
	groups := float64(p.WorkGroups())
	groupSize := p.GroupSize()

	// SIMD lane efficiency: partial warps waste lanes; divergence idles
	// lanes on top of that.
	laneEff := float64(groupSize) / float64(occ.WarpsPerGroup*d.SIMDWidth)
	effLanes := float64(d.SIMDWidth) * laneEff * (1 - p.DivergentFraction)
	if effLanes < 1 {
		effLanes = 1
	}

	// --- Arithmetic bottleneck --------------------------------------------
	// Loop-control instructions cost ~3 ops per iteration; unrolling
	// already reduced InnerIters in the profile. Mild ILP benefit from
	// unrolling (more independent instructions in flight).
	loopOps := 3 * p.InnerIters
	ilp := 1 + 0.06*math.Log2(float64(p.UnrollFactor))
	computeOps := (p.Flops + loopOps) / ilp
	computeTime := computeOps / (cu * effLanes * d.FlopsPerLaneCycle * clockHz)

	// --- DRAM bandwidth bottleneck ----------------------------------------
	coal := coalesceFactor(d, p.GlobalReadStride, d.SIMDWidth, p.RowAligned)
	globalBytes := (p.GlobalReads*coal + p.GlobalWrites) * 4
	// Register spills become scratch traffic: one round trip per spilled
	// register per inner iteration is pessimistic; use outputs as scale.
	if occ.SpilledRegisters > 0 {
		globalBytes += float64(occ.SpilledRegisters) * float64(p.WorkItems()) * 8
	}
	llcHit := cacheHitFraction(d.LLCBytes, int64(groups/cu)*p.WorkingSetBytes, p.ImageLocality2D)
	// The LLC mostly helps re-referenced lines, which track the stride
	// inefficiency portion (uncoalesced lanes re-touch neighbour lines).
	// Texture-cache misses flow through the same LLC before DRAM.
	texMissBytes := 0.0
	if p.ImageReads > 0 {
		texHit := cacheHitFraction(d.TexCacheBytesPerCU, p.WorkingSetBytes, p.ImageLocality2D)
		texMissBytes = p.ImageReads * 4 * (1 - texHit)
	}
	dramBytes := (globalBytes + texMissBytes) * (1 - 0.6*llcHit)
	// Constant memory is broadcast-cached: negligible DRAM traffic.
	bwEff := latencyHiding(occ.Fraction)
	dramTime := dramBytes / (d.MemBandwidthGBs * 1e9 * bwEff)

	// --- Memory latency bottleneck ----------------------------------------
	// With few resident warps, dependent loads expose raw latency.
	transactions := (p.GlobalReads*coal + p.GlobalWrites + texMissBytes/4) / float64(d.SIMDWidth)
	const memParallelism = 6 // outstanding requests per warp
	latTime := transactions * d.MemLatencyNs * 1e-9 /
		(cu * occ.ResidentWarps * memParallelism)

	// --- Texture sampling throughput ---------------------------------------
	texTime := 0.0
	if p.ImageReads > 0 && d.TexelsPerCUCycle > 0 {
		texTime = p.ImageReads / (cu * d.TexelsPerCUCycle * clockHz)
	}

	// --- Local memory throughput --------------------------------------------
	ldsTime := 0.0
	if p.LocalReads+p.LocalWrites > 0 {
		ldsOps := p.LocalReads + p.LocalWrites
		ldsTime = ldsOps / (cu * d.LDSLanesPerCU * clockHz)
	}

	// Roofline with soft transitions between bottlenecks.
	busy := softmaxP(4, computeTime, dramTime, latTime, texTime, ldsTime)

	// --- Serial overheads -----------------------------------------------------
	barrierTime := float64(p.BarriersPerItem) * groups * d.BarrierCycles /
		(cu * occ.ResidentGroups * clockHz)
	schedTime := groups * d.GroupScheduleOverheadNs * 1e-9 / cu
	launchTime := d.KernelLaunchOverheadUs * 1e-6

	// --- Tail (grid too small to fill the device) --------------------------------
	// With fewer groups than one wave (cu*ResidentGroups), part of the
	// device idles and time stretches by wave/groups. The smooth p-norm
	// keeps the learnable landscape free of wave-quantization sawtooth,
	// which the roughness layer represents instead.
	wave := cu * occ.ResidentGroups
	busy *= softmaxP(4, 1, wave/groups)

	// --- Very large work-groups ---------------------------------------------------
	// Beyond ~8 warps per group the scheduler loses flexibility: fewer
	// independent groups per compute unit, coarser load balancing and
	// longer barrier shadows. The penalty grows smoothly with group size
	// so that work-group-size optima sit in the interior of the valid
	// range, as on real hardware.
	if groupSize > 128 {
		busy *= 1 + 0.15*math.Log2(float64(groupSize)/128)
	}

	return busy + barrierTime + schedTime + launchTime, nil
}
