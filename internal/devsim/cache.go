package devsim

import "math"

// cacheHitFraction estimates the fraction of accesses served by a cache of
// capacity capBytes when the accessing unit streams over a working set of
// wsBytes with a reuse pattern characterised by locality2D.
//
// The model is a smooth capacity curve: while the working set fits, nearly
// all reuse hits (compulsory misses only); once it exceeds capacity the
// hit rate decays with the ratio. 2D-local patterns degrade more
// gracefully than streaming ones because row reuse survives partial
// eviction.
func cacheHitFraction(capBytes int64, wsBytes int64, locality2D bool) float64 {
	if capBytes <= 0 || wsBytes <= 0 {
		return 0
	}
	ratio := float64(wsBytes) / float64(capBytes)
	if ratio <= 1 {
		return 0.95
	}
	// Power-law capacity decay: in log space (where the tuning features
	// live) this is linear, matching the gradual degradation measured for
	// tiled access patterns; 2D-local patterns keep row reuse longer.
	decay := 1.8
	if locality2D {
		decay = 1.2
	}
	hit := 0.95 * math.Pow(ratio, -decay)
	if hit < 0.02 {
		hit = 0.02
	}
	return hit
}

// softmax2 smoothly combines bottleneck times: the result approaches
// max(times...) when one term dominates and slightly exceeds it when
// several bottlenecks are comparable, matching how real pipelines overlap
// imperfectly. p controls the sharpness (p -> inf is exact max).
func softmaxP(p float64, times ...float64) float64 {
	var sum float64
	for _, t := range times {
		if t > 0 {
			sum += math.Pow(t, p)
		}
	}
	if sum == 0 {
		return 0
	}
	return math.Pow(sum, 1/p)
}
