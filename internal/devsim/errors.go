package devsim

import (
	"errors"
	"fmt"
)

// invalidConfig is implemented by all errors that mean "this tuning
// configuration cannot run on this device" — as opposed to programming
// errors, which the auto-tuner must not swallow.
type invalidConfig interface {
	error
	InvalidConfig()
}

// StaticError reports a configuration rejected by static checks, before
// any compilation is attempted (paper §5.2: "if the specific device is
// known, most of the invalid configurations can be determined statically").
type StaticError struct {
	Device string
	Reason string
}

func (e *StaticError) Error() string {
	return fmt.Sprintf("devsim: %s: invalid configuration (static): %s", e.Device, e.Reason)
}

// InvalidConfig marks StaticError as a configuration-validity error.
func (e *StaticError) InvalidConfig() {}

// BuildError reports a configuration whose kernel fails to compile
// (discovered only by attempting the build).
type BuildError struct {
	Device string
	Reason string
}

func (e *BuildError) Error() string {
	return fmt.Sprintf("devsim: %s: kernel build failed: %s", e.Device, e.Reason)
}

// InvalidConfig marks BuildError as a configuration-validity error.
func (e *BuildError) InvalidConfig() {}

// LaunchError reports a configuration that compiles but cannot launch
// (e.g. a single work-group exceeds on-chip resources).
type LaunchError struct {
	Device string
	Reason string
}

func (e *LaunchError) Error() string {
	return fmt.Sprintf("devsim: %s: kernel launch failed: %s", e.Device, e.Reason)
}

// InvalidConfig marks LaunchError as a configuration-validity error.
func (e *LaunchError) InvalidConfig() {}

// IsInvalid reports whether err (anywhere in its chain) marks an invalid
// tuning configuration rather than an internal failure.
func IsInvalid(err error) bool {
	var ic invalidConfig
	return errors.As(err, &ic)
}
