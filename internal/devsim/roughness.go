package devsim

import (
	"math"

	"repro/internal/kprofile"
)

// roughness returns a deterministic multiplicative factor (centred on 1)
// applied to the smooth model time of a configuration. It stands in for
// everything real drivers do that is invisible to the tuning parameters:
// instruction scheduling luck, register allocation cliffs, internal
// heuristics toggling, partition camping, and so on. Because the factor is
// a pure hash of the configuration it is stable across repeated
// measurements (it is *not* noise) yet uncorrelated with the features the
// neural network sees — it forms the irreducible part of the prediction
// error, which the paper observes to differ strongly between devices
// (§7: Intel ~6-8%, Nvidia ~12-15%, AMD ~12-21%).
//
// Configurations that rely on driver-pragma unrolling get a second,
// larger term on devices whose compiler honours the pragma erratically
// (the AMD HD 7970 in the paper's discussion); manually unrolled kernels
// (raycasting) are unaffected, reproducing the per-benchmark accuracy gap
// on AMD.
func roughness(d *Descriptor, p *kprofile.Profile) float64 {
	key := combine(p.ConfigKey, d.Salt)
	factor := math.Exp(d.RoughnessSigma * hashNormal(key))

	if p.DriverUnroll && p.UnrollFactor > 1 && d.DriverUnrollRoughness > 0 {
		ukey := combine(key, 0xdead0f0e11)
		// With probability (1 - reliability) the driver's unrolling
		// misfires for this configuration: instead of the expected
		// benefit, performance lands noticeably worse. Misfiring is
		// strictly a penalty: the lottery has losers, not winners, so
		// the global optimum stays in predictable territory while the
		// model's error over unrolled configurations grows.
		if hash01(ukey) > d.DriverUnrollReliability {
			factor *= 1 + d.DriverUnrollRoughness*(0.5+hash01(combine(ukey, 7)))
		} else {
			factor *= 1 + 0.08*d.DriverUnrollRoughness*hash01(combine(ukey, 13))
		}
	}
	return factor
}

// noiseFactor returns the multiplicative measurement jitter for the rep-th
// measurement of a configuration: lognormal around 1 plus an occasional
// positive outlier, as produced by OS scheduling interference. Fully
// deterministic in (device, config, rep).
func noiseFactor(d *Descriptor, configKey uint64, rep uint64) float64 {
	key := combine(combine(configKey, d.Salt), 0xbeef0000+rep)
	f := math.Exp(d.NoiseSigma * hashNormal(key))
	// ~2% of measurements are disturbed and run up to 25% slower.
	if hash01(combine(key, 0x0dd)) < 0.02 {
		f *= 1 + 0.25*hash01(combine(key, 0x0ddf))
	}
	return f
}
