package storage

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// memory is the in-process backend: tests and ephemeral serve replicas
// that hold nothing worth keeping across a restart (their registry is
// re-pulled from the upstream train node anyway). Atomicity is trivial
// — the object map swaps whole slices under a mutex — and generations
// are a plain counter.
type memory struct {
	mu    sync.Mutex
	objs  map[string]*memObj
	clock uint64
}

type memObj struct {
	data    []byte
	modTime time.Time
	gen     uint64
}

// NewMemory returns an empty in-memory backend.
func NewMemory() Backend {
	return &memory{objs: make(map[string]*memObj)}
}

func (m *memory) Name() string { return "memory" }

func (m *memory) List() ([]ObjectInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ObjectInfo, 0, len(m.objs))
	for name, o := range m.objs {
		out = append(out, o.info(name))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (o *memObj) info(name string) ObjectInfo {
	return ObjectInfo{Name: name, Size: int64(len(o.data)), ModTime: o.modTime, Generation: o.gen}
}

func (m *memory) Stat(name string) (ObjectInfo, error) {
	if err := ValidateName(name); err != nil {
		return ObjectInfo{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.objs[name]
	if !ok {
		return ObjectInfo{}, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return o.info(name), nil
}

func (m *memory) Get(name string) ([]byte, ObjectInfo, error) {
	if err := ValidateName(name); err != nil {
		return nil, ObjectInfo{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.objs[name]
	if !ok {
		return nil, ObjectInfo{}, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	// Objects are immutable once stored (Put and Append replace the
	// slice), so handing out a copy keeps callers from aliasing the
	// store's view.
	return append([]byte(nil), o.data...), o.info(name), nil
}

func (m *memory) Put(name string, data []byte) (ObjectInfo, error) {
	if err := ValidateName(name); err != nil {
		return ObjectInfo{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clock++
	o := &memObj{data: append([]byte(nil), data...), modTime: time.Now().UTC(), gen: m.clock}
	m.objs[name] = o
	return o.info(name), nil
}

func (m *memory) Append(name string, data []byte) (ObjectInfo, error) {
	if err := ValidateName(name); err != nil {
		return ObjectInfo{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clock++
	var prev []byte
	if o, ok := m.objs[name]; ok {
		prev = o.data
	}
	grown := make([]byte, 0, len(prev)+len(data))
	grown = append(append(grown, prev...), data...)
	o := &memObj{data: grown, modTime: time.Now().UTC(), gen: m.clock}
	m.objs[name] = o
	return o.info(name), nil
}

func (m *memory) Delete(name string) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.objs[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	delete(m.objs, name)
	return nil
}
