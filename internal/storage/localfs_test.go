package storage_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

func TestLocalFSConformance(t *testing.T) {
	storagetest.Run(t, func(t *testing.T) storage.Backend {
		be, err := storage.OpenLocalFS(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return be
	})
}

// TestLocalFSRawLayout pins bit-compatibility with the pre-storage
// on-disk layout: a Put writes exactly the given bytes under exactly
// the given name (no envelope, no sidecar), and files dropped into the
// directory behind the backend's back read back unchanged.
func TestLocalFSRawLayout(t *testing.T) {
	dir := t.TempDir()
	be, err := storage.OpenLocalFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("exact bytes\nwith a second line")
	if _, err := be.Put("model.mlt", payload); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, "model.mlt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, payload) {
		t.Errorf("on-disk bytes %q, want the exact payload %q", onDisk, payload)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries, want only the object file: %v", len(entries), entries)
	}

	// A file written externally (cmd/mltune -save-model, an operator's
	// cp) is served with a generation of its own.
	external := []byte("dropped in behind the backend's back")
	if err := os.WriteFile(filepath.Join(dir, "external.mlt"), external, 0o644); err != nil {
		t.Fatal(err)
	}
	got, info, err := be.Get("external.mlt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, external) || info.Generation == 0 {
		t.Errorf("external file: got %q gen %d", got, info.Generation)
	}
}

// TestLocalFSCrashOrphanSweep pins the crash story: temp files from an
// interrupted Put are removed at open and by Sweep, and never count as
// objects.
func TestLocalFSCrashOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, ".tmp-123456")
	if err := os.WriteFile(orphan, []byte("half-written"), 0o600); err != nil {
		t.Fatal(err)
	}
	be, err := storage.OpenLocalFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphan not swept at open: %v", err)
	}
	list, err := be.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Errorf("swept directory lists %+v", list)
	}

	// Sweep mid-life: a later crash orphan (simulated directly) goes too.
	if err := os.WriteFile(orphan, []byte("again"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := be.(storage.Sweeper).Sweep(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphan not swept by Sweep: %v", err)
	}
}

// TestLocalFSGenerationsAcrossRestart pins the replication cursor
// contract: reopening a directory re-derives generations that never
// exceed what the objects were last advertised under, and mutations
// after the restart keep climbing.
func TestLocalFSGenerationsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	be, err := storage.OpenLocalFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	info, err := be.Put("a.obj", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}

	be2, err := storage.OpenLocalFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := be2.Stat("a.obj")
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation > info.Generation {
		t.Errorf("restart advanced an unchanged object's generation: %d > %d (a replica holding a since-cursor would re-fetch the world)",
			st.Generation, info.Generation)
	}
	info2, err := be2.Put("a.obj", []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if info2.Generation <= st.Generation {
		t.Errorf("post-restart Put generation %d did not advance past %d", info2.Generation, st.Generation)
	}

	// An external touch with changed contents gets a fresh generation.
	time.Sleep(5 * time.Millisecond) // ensure a distinct mtime even on coarse clocks
	if err := os.WriteFile(filepath.Join(dir, "a.obj"), []byte("external"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := be2.Stat("a.obj")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Generation <= info2.Generation {
		t.Errorf("external modification not detected: generation %d after %d", st2.Generation, info2.Generation)
	}
}

// TestLocalFSDeleteForgetsGeneration pins that an externally removed and
// re-created name is not mistaken for unchanged.
func TestLocalFSDeleteForgetsGeneration(t *testing.T) {
	dir := t.TempDir()
	be, err := storage.OpenLocalFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Put("a.obj", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := be.Delete("a.obj"); err != nil {
		t.Fatal(err)
	}
	if _, err := be.Stat("a.obj"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("Stat after Delete: %v", err)
	}
	info, err := be.Put("a.obj", []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation == 0 {
		t.Error("re-created object has zero generation")
	}
}

// TestLocalFSMapper pins the Mapper contract on localfs: Map returns
// the object's exact bytes (memory-mapped on platforms that support
// it), a generation consistent with Stat, and — because replacement is
// rename-only — an existing mapping keeps serving the old contents
// unchanged after the object is replaced or deleted.
func TestLocalFSMapper(t *testing.T) {
	be, err := storage.OpenLocalFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mp, ok := be.(storage.Mapper)
	if !ok {
		t.Fatal("localfs does not implement storage.Mapper")
	}
	if _, _, err := mp.Map("absent"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("Map(absent) = %v, want ErrNotExist", err)
	}
	old := []byte("generation one contents")
	if _, err := be.Put("model.mlt", old); err != nil {
		t.Fatal(err)
	}
	d, info, err := mp.Map("model.mlt")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if !bytes.Equal(d.Bytes(), old) {
		t.Fatalf("mapped bytes = %q, want %q", d.Bytes(), old)
	}
	if info.Size != int64(len(old)) {
		t.Fatalf("info.Size = %d, want %d", info.Size, len(old))
	}
	st, err := be.Stat("model.mlt")
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != st.Generation {
		t.Fatalf("Map generation %d != Stat generation %d", info.Generation, st.Generation)
	}

	// Replace and delete under the live mapping: rename-only replacement
	// means the mapped inode — and therefore these bytes — cannot change.
	if _, err := be.Put("model.mlt", []byte("generation two, longer than before")); err != nil {
		t.Fatal(err)
	}
	if err := be.Delete("model.mlt"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d.Bytes(), old) {
		t.Fatal("mapping changed after the object was replaced and deleted")
	}
}
