// Package storagetest is the storage-backend conformance suite: every
// storage.Backend implementation must pass Run before the daemon's
// registry and sample store are built on it. New backends (object
// store, KV, ...) get their contract checked here, not rediscovered in
// production; see CONTRIBUTING.
package storagetest

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/storage"
)

// Run exercises the Backend contract against a fresh backend from
// newBackend: CRUD round-trips, sorted listing, strict generation
// monotonicity across Put/Append, append accumulation, name
// validation, ErrNotExist sentinels, and atomic visibility under a
// concurrent writer (run with -race to make the safety claim real).
func Run(t *testing.T, newBackend func(t *testing.T) storage.Backend) {
	t.Run("RoundTrip", func(t *testing.T) { testRoundTrip(t, newBackend(t)) })
	t.Run("ListSorted", func(t *testing.T) { testListSorted(t, newBackend(t)) })
	t.Run("GenerationMonotonic", func(t *testing.T) { testGenerationMonotonic(t, newBackend(t)) })
	t.Run("AppendAccumulates", func(t *testing.T) { testAppendAccumulates(t, newBackend(t)) })
	t.Run("NotExist", func(t *testing.T) { testNotExist(t, newBackend(t)) })
	t.Run("NameValidation", func(t *testing.T) { testNameValidation(t, newBackend(t)) })
	t.Run("AtomicVisibility", func(t *testing.T) { testAtomicVisibility(t, newBackend(t)) })
}

func testRoundTrip(t *testing.T, be storage.Backend) {
	if be.Name() == "" {
		t.Error("backend has an empty Name")
	}
	want := []byte("payload-one")
	info, err := be.Put("a.obj", want)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "a.obj" || info.Size != int64(len(want)) || info.Generation == 0 {
		t.Errorf("Put info %+v", info)
	}
	got, ginfo, err := be.Get("a.obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Get returned %q, want %q", got, want)
	}
	if ginfo.Generation != info.Generation {
		t.Errorf("Get generation %d, Put said %d", ginfo.Generation, info.Generation)
	}
	st, err := be.Stat("a.obj")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != int64(len(want)) || st.Generation != info.Generation {
		t.Errorf("Stat %+v after Put %+v", st, info)
	}
	// Overwrite fully replaces.
	want2 := []byte("replacement, a different length")
	if _, err := be.Put("a.obj", want2); err != nil {
		t.Fatal(err)
	}
	got, _, err = be.Get("a.obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want2) {
		t.Errorf("after overwrite Get returned %q, want %q", got, want2)
	}
	if err := be.Delete("a.obj"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := be.Get("a.obj"); !errors.Is(err, storage.ErrNotExist) {
		t.Errorf("Get after Delete: %v, want ErrNotExist", err)
	}
}

func testListSorted(t *testing.T, be storage.Backend) {
	for _, name := range []string{"c.obj", "a.obj", "b.obj"} {
		if _, err := be.Put(name, []byte(name)); err != nil {
			t.Fatal(err)
		}
	}
	list, err := be.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("listed %d objects, want 3: %+v", len(list), list)
	}
	for i, want := range []string{"a.obj", "b.obj", "c.obj"} {
		if list[i].Name != want {
			t.Errorf("list[%d] = %q, want %q", i, list[i].Name, want)
		}
		if list[i].Generation == 0 {
			t.Errorf("list[%d] has zero generation", i)
		}
	}
}

func testGenerationMonotonic(t *testing.T, be storage.Backend) {
	var last uint64
	bump := func(op string, info storage.ObjectInfo, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if info.Generation <= last {
			t.Fatalf("%s assigned generation %d, not above the previous %d", op, info.Generation, last)
		}
		last = info.Generation
	}
	for i := 0; i < 5; i++ {
		info, err := be.Put("gen.obj", []byte(fmt.Sprintf("v%d", i)))
		bump("Put", info, err)
	}
	for i := 0; i < 5; i++ {
		info, err := be.Append("gen.obj", []byte("x"))
		bump("Append", info, err)
	}
	// Mutating a different key must also advance past the global
	// high-water mark: "changed since G" compares across keys.
	info, err := be.Put("other.obj", []byte("y"))
	bump("Put(other)", info, err)
	// Reads never change generations.
	st, err := be.Stat("gen.obj")
	if err != nil {
		t.Fatal(err)
	}
	st2, err := be.Stat("gen.obj")
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != st2.Generation {
		t.Errorf("Stat moved the generation %d -> %d without a mutation", st.Generation, st2.Generation)
	}
}

func testAppendAccumulates(t *testing.T, be storage.Backend) {
	// Append creates on first use.
	if _, err := be.Append("log.obj", []byte("one\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := be.Append("log.obj", []byte("two\n")); err != nil {
		t.Fatal(err)
	}
	got, info, err := be.Get("log.obj")
	if err != nil {
		t.Fatal(err)
	}
	if want := "one\ntwo\n"; string(got) != want {
		t.Errorf("appended contents %q, want %q", got, want)
	}
	if info.Size != int64(len(got)) {
		t.Errorf("info.Size %d, contents %d bytes", info.Size, len(got))
	}
}

func testNotExist(t *testing.T, be storage.Backend) {
	if _, _, err := be.Get("missing.obj"); !errors.Is(err, storage.ErrNotExist) {
		t.Errorf("Get(missing): %v, want ErrNotExist", err)
	}
	if _, err := be.Stat("missing.obj"); !errors.Is(err, storage.ErrNotExist) {
		t.Errorf("Stat(missing): %v, want ErrNotExist", err)
	}
	if err := be.Delete("missing.obj"); !errors.Is(err, storage.ErrNotExist) {
		t.Errorf("Delete(missing): %v, want ErrNotExist", err)
	}
}

func testNameValidation(t *testing.T, be storage.Backend) {
	for _, bad := range []string{"", "a/b.obj", `a\b.obj`, "../escape", ".tmp-123", ".hidden"} {
		if _, err := be.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid name", bad)
		}
		if _, err := be.Append(bad, []byte("x")); err == nil {
			t.Errorf("Append(%q) accepted an invalid name", bad)
		}
		if _, _, err := be.Get(bad); err == nil {
			t.Errorf("Get(%q) accepted an invalid name", bad)
		}
	}
}

// testAtomicVisibility pins the Put atomicity contract: with one writer
// alternating two payloads and concurrent readers, every Get must
// return exactly one of the payloads — never a mix, a truncation, or
// torn bytes.
func testAtomicVisibility(t *testing.T, be storage.Backend) {
	a := bytes.Repeat([]byte("A"), 8192)
	b := bytes.Repeat([]byte("B"), 4096)
	if _, err := be.Put("swap.obj", a); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			payload := a
			if i%2 == 1 {
				payload = b
			}
			if _, err := be.Put("swap.obj", payload); err != nil {
				t.Errorf("writer: %v", err)
				break
			}
		}
		close(done)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				got, info, err := be.Get("swap.obj")
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if !bytes.Equal(got, a) && !bytes.Equal(got, b) {
					t.Errorf("reader saw a torn object: %d bytes, first %q", len(got), got[:min(8, len(got))])
					return
				}
				if info.Generation < lastGen {
					t.Errorf("reader saw generation go backwards: %d after %d", info.Generation, lastGen)
					return
				}
				lastGen = info.Generation
			}
		}()
	}
	wg.Wait()
}
