package storage_test

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

func TestMemoryConformance(t *testing.T) {
	storagetest.Run(t, func(t *testing.T) storage.Backend {
		return storage.NewMemory()
	})
}

// TestMemoryGetCopies pins that a caller mutating a returned slice
// cannot corrupt the stored object.
func TestMemoryGetCopies(t *testing.T) {
	be := storage.NewMemory()
	if _, err := be.Put("a.obj", []byte("immutable")); err != nil {
		t.Fatal(err)
	}
	got, _, err := be.Get("a.obj")
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 'X'
	again, _, err := be.Get("a.obj")
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != "immutable" {
		t.Errorf("stored object mutated through a Get result: %q", again)
	}
}
