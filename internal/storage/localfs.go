package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/mmapx"
)

// localFS is the on-disk backend: one flat directory, one file per
// object, with the durability discipline the daemon has always had —
// Put writes a temp file, fsyncs it, renames it over the target, and
// fsyncs the directory, so neither a crash mid-write nor a power loss
// right after the swap can corrupt or lose an object; Append fsyncs
// before returning. Files it writes are byte-identical to the data
// given (no envelope), so directories written before this package
// existed — and files written behind its back by cmd/mltune
// -save-model — read back unchanged.
//
// Generations are derived from file mtimes with an in-process monotonic
// overlay: a mutation through the backend gets max(clock+1, mtime), and
// a restart re-derives every generation from mtime alone — never more
// than what the object was last advertised under, so a replica's
// "since" cursor stays valid across train-node restarts. External
// writes are detected by mtime/size drift at the next Stat or List and
// get a fresh generation.
type localFS struct {
	dir string

	mu   sync.Mutex
	gens map[string]genRec
	// clock is the generation high-water mark; see bumpLocked.
	clock uint64
	// tmps names in-flight write temporaries, which Sweep must not
	// remove from under a concurrent Put.
	tmps map[string]bool
}

// genRec remembers the (mtime, size) an object's generation was
// assigned at, so external modifications are detectable.
type genRec struct {
	gen   uint64
	mtime int64
	size  int64
}

// OpenLocalFS opens (creating if needed) a directory-backed backend,
// sweeping write temporaries orphaned by a crash and deriving initial
// generations from file mtimes.
func OpenLocalFS(dir string) (Backend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating directory: %w", err)
	}
	l := &localFS{dir: dir, gens: make(map[string]genRec), tmps: make(map[string]bool)}
	if err := l.Sweep(); err != nil {
		return nil, err
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: scanning directory: %w", err)
	}
	for _, de := range des {
		if de.IsDir() || strings.HasPrefix(de.Name(), ".") {
			continue
		}
		st, err := de.Info()
		if err != nil {
			continue
		}
		mt := st.ModTime().UnixNano()
		l.gens[de.Name()] = genRec{gen: uint64(mt), mtime: mt, size: st.Size()}
		if uint64(mt) > l.clock {
			l.clock = uint64(mt)
		}
	}
	return l, nil
}

func (l *localFS) Name() string { return "localfs" }

// Dir returns the backing directory (the accessor behind the daemon's
// startup log and the default <models>/samples placement).
func (l *localFS) Dir() string { return l.dir }

// bumpLocked assigns the next generation, at least mtime so a restart
// (which re-derives from mtimes) can never run ahead of what was
// advertised. Callers hold l.mu.
func (l *localFS) bumpLocked(mtime int64) uint64 {
	l.clock++
	if uint64(mtime) > l.clock {
		l.clock = uint64(mtime)
	}
	return l.clock
}

// refreshLocked returns name's generation, assigning a fresh one when
// the file changed (or appeared) behind the backend's back. Callers
// hold l.mu.
func (l *localFS) refreshLocked(name string, mtime, size int64) uint64 {
	if rec, ok := l.gens[name]; ok && rec.mtime == mtime && rec.size == size {
		return rec.gen
	}
	gen := l.bumpLocked(mtime)
	l.gens[name] = genRec{gen: gen, mtime: mtime, size: size}
	return gen
}

// record registers a mutation this backend just performed.
func (l *localFS) record(name string, mtime, size int64) ObjectInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	gen := l.bumpLocked(mtime)
	l.gens[name] = genRec{gen: gen, mtime: mtime, size: size}
	return ObjectInfo{Name: name, Size: size, Generation: gen}
}

func (l *localFS) List() ([]ObjectInfo, error) {
	des, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: scanning directory: %w", err)
	}
	out := make([]ObjectInfo, 0, len(des))
	seen := make(map[string]bool, len(des))
	l.mu.Lock()
	for _, de := range des {
		if de.IsDir() || strings.HasPrefix(de.Name(), ".") {
			continue
		}
		st, err := de.Info()
		if err != nil {
			continue
		}
		seen[de.Name()] = true
		gen := l.refreshLocked(de.Name(), st.ModTime().UnixNano(), st.Size())
		out = append(out, ObjectInfo{Name: de.Name(), Size: st.Size(), ModTime: st.ModTime().UTC(), Generation: gen})
	}
	// Forget objects whose files were removed externally, so a name
	// reused later is not mistaken for unchanged.
	for name := range l.gens {
		if !seen[name] {
			delete(l.gens, name)
		}
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (l *localFS) Stat(name string) (ObjectInfo, error) {
	if err := ValidateName(name); err != nil {
		return ObjectInfo{}, err
	}
	st, err := os.Stat(filepath.Join(l.dir, name))
	if os.IsNotExist(err) {
		return ObjectInfo{}, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if err != nil {
		return ObjectInfo{}, fmt.Errorf("storage: stat %s: %w", name, err)
	}
	l.mu.Lock()
	gen := l.refreshLocked(name, st.ModTime().UnixNano(), st.Size())
	l.mu.Unlock()
	return ObjectInfo{Name: name, Size: st.Size(), ModTime: st.ModTime().UTC(), Generation: gen}, nil
}

func (l *localFS) Get(name string) ([]byte, ObjectInfo, error) {
	info, err := l.Stat(name)
	if err != nil {
		return nil, ObjectInfo{}, err
	}
	data, err := os.ReadFile(filepath.Join(l.dir, name))
	if os.IsNotExist(err) {
		return nil, ObjectInfo{}, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if err != nil {
		return nil, ObjectInfo{}, fmt.Errorf("storage: reading %s: %w", name, err)
	}
	return data, info, nil
}

// Map opens the object zero-copy. localfs may implement Mapper because
// its replacement discipline is rename-only: the mapped inode is never
// rewritten in place, so a concurrent Put or Delete cannot change or
// truncate pages under an existing mapping (the old inode lives until
// the last open reference — including the mapping — goes away).
func (l *localFS) Map(name string) (*mmapx.Data, ObjectInfo, error) {
	if err := ValidateName(name); err != nil {
		return nil, ObjectInfo{}, err
	}
	path := filepath.Join(l.dir, name)
	d, err := mmapx.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ObjectInfo{}, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return nil, ObjectInfo{}, fmt.Errorf("storage: mapping %s: %w", name, err)
	}
	st, err := os.Stat(path)
	if err != nil {
		d.Close()
		if os.IsNotExist(err) {
			return nil, ObjectInfo{}, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return nil, ObjectInfo{}, fmt.Errorf("storage: mapping %s: %w", name, err)
	}
	l.mu.Lock()
	gen := l.refreshLocked(name, st.ModTime().UnixNano(), st.Size())
	l.mu.Unlock()
	return d, ObjectInfo{Name: name, Size: int64(len(d.Bytes())), ModTime: st.ModTime().UTC(), Generation: gen}, nil
}

func (l *localFS) Put(name string, data []byte) (ObjectInfo, error) {
	if err := ValidateName(name); err != nil {
		return ObjectInfo{}, err
	}
	tmp, err := os.CreateTemp(l.dir, tmpPrefix+"*")
	if err != nil {
		return ObjectInfo{}, fmt.Errorf("storage: writing %s: %w", name, err)
	}
	tmpName := filepath.Base(tmp.Name())
	l.mu.Lock()
	l.tmps[tmpName] = true
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.tmps, tmpName)
		l.mu.Unlock()
	}()
	fail := func(err error) (ObjectInfo, error) {
		tmp.Close()
		os.Remove(tmp.Name())
		return ObjectInfo{}, fmt.Errorf("storage: writing %s: %w", name, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	// fsync before the rename: the swap must never become visible while
	// the bytes are only in the page cache, or a power loss would leave
	// a truncated object under the final name.
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return ObjectInfo{}, fmt.Errorf("storage: writing %s: %w", name, err)
	}
	final := filepath.Join(l.dir, name)
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return ObjectInfo{}, fmt.Errorf("storage: writing %s: %w", name, err)
	}
	st, err := os.Stat(final)
	if err != nil {
		return ObjectInfo{}, fmt.Errorf("storage: writing %s: %w", name, err)
	}
	info := l.record(name, st.ModTime().UnixNano(), st.Size())
	info.ModTime = st.ModTime().UTC()
	// fsync the directory so the rename itself (the new directory entry)
	// is durable, not just the file contents.
	if err := syncDir(l.dir); err != nil {
		return info, fmt.Errorf("storage: writing %s: %w", name, err)
	}
	return info, nil
}

func (l *localFS) Append(name string, data []byte) (ObjectInfo, error) {
	if err := ValidateName(name); err != nil {
		return ObjectInfo{}, err
	}
	path := filepath.Join(l.dir, name)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return ObjectInfo{}, fmt.Errorf("storage: appending to %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return ObjectInfo{}, fmt.Errorf("storage: appending to %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return ObjectInfo{}, fmt.Errorf("storage: appending to %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return ObjectInfo{}, fmt.Errorf("storage: appending to %s: %w", name, err)
	}
	st, err := os.Stat(path)
	if err != nil {
		return ObjectInfo{}, fmt.Errorf("storage: appending to %s: %w", name, err)
	}
	info := l.record(name, st.ModTime().UnixNano(), st.Size())
	info.ModTime = st.ModTime().UTC()
	return info, nil
}

func (l *localFS) Delete(name string) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	err := os.Remove(filepath.Join(l.dir, name))
	if os.IsNotExist(err) {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if err != nil {
		return fmt.Errorf("storage: deleting %s: %w", name, err)
	}
	l.mu.Lock()
	delete(l.gens, name)
	l.mu.Unlock()
	return syncDir(l.dir)
}

// Sweep removes write temporaries orphaned by a crash. Temporaries of
// in-flight Puts are skipped, so a concurrent reload cannot yank a file
// out from under a writer.
func (l *localFS) Sweep() error {
	des, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("storage: sweeping directory: %w", err)
	}
	for _, de := range des {
		if de.IsDir() || !strings.HasPrefix(de.Name(), tmpPrefix) {
			continue
		}
		l.mu.Lock()
		inflight := l.tmps[de.Name()]
		l.mu.Unlock()
		if !inflight {
			os.Remove(filepath.Join(l.dir, de.Name()))
		}
	}
	return nil
}

// syncDir fsyncs a directory, making renames inside it durable across
// power loss. Callers that just atomically swapped a file in dir must
// call it before reporting success.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
