// Package storage defines the pluggable persistence layer under
// mltuned's model registry and sample store: a flat namespace of named
// blobs with atomic replacement, durable appends, and per-key
// generation numbers.
//
// The interface is deliberately small — list/stat/get/put/append/delete
// — because it is the fan-out point for fleet scale-out: a train-plane
// node writes model artifacts through it, and serve-plane replicas pull
// changed artifacts by comparing generations, whatever medium actually
// holds the bytes. Two implementations ship today: localfs (the
// daemon's historical on-disk layout, bit-compatible with files written
// before this package existed) and memory (tests and ephemeral
// replicas). New backends must pass the conformance suite in
// storage/storagetest before the daemon will trust them; see
// CONTRIBUTING.
package storage

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/mmapx"
)

// ErrNotExist reports an operation on an object the backend does not
// hold. Compare with errors.Is.
var ErrNotExist = errors.New("storage: object does not exist")

// ObjectInfo describes one stored object.
type ObjectInfo struct {
	// Name is the object's key in the backend's flat namespace.
	Name string
	// Size is the object's length in bytes.
	Size int64
	// ModTime is when the object was last mutated.
	ModTime time.Time
	// Generation is the object's change number: every mutation (Put or
	// Append) observed by the backend assigns a generation strictly
	// greater than any the backend returned before, so "changed since G"
	// is answerable by comparison alone. Generations order changes within
	// one backend; they are not comparable across backends. Across a
	// restart a persistent backend re-derives generations such that an
	// unchanged object's generation never exceeds the last one it was
	// advertised under.
	Generation uint64
}

// Backend stores named blobs. Implementations must be safe for
// concurrent use, and Put must be atomic: a reader (or a crash) sees
// either the old contents or the new, never a mix or a truncation.
type Backend interface {
	// Name identifies the implementation ("localfs", "memory") for
	// operator-facing surfaces like /v1/stats.
	Name() string
	// List returns every object, sorted by name.
	List() ([]ObjectInfo, error)
	// Stat describes one object (ErrNotExist when absent).
	Stat(name string) (ObjectInfo, error)
	// Get returns the object's contents and info (ErrNotExist when
	// absent). The returned slice is the caller's to keep.
	Get(name string) ([]byte, ObjectInfo, error)
	// Put atomically and durably replaces (creating if needed) the
	// object's contents and assigns it a new generation.
	Put(name string, data []byte) (ObjectInfo, error)
	// Append durably appends to the object (creating if needed) and
	// assigns it a new generation.
	Append(name string, data []byte) (ObjectInfo, error)
	// Delete removes the object (ErrNotExist when absent).
	Delete(name string) error
}

// Sweeper is implemented by backends that can be left with crash
// debris (half-written temporaries). Sweep removes it; the registry's
// reload path calls it so a crashed daemon does not leak one temp file
// per interrupted write forever.
type Sweeper interface {
	Sweep() error
}

// Mapper is implemented by backends whose objects can be opened
// zero-copy as a memory mapping. Map returns the object's contents
// without copying them onto the heap when the platform allows (the
// mmapx.Data reports whether it is actually mapped); callers own the
// mapping and must Close it when done. The mapping observes the object
// as of the call: localfs only ever replaces objects by rename, so the
// mapped inode stays intact — and the mapping stays valid — even if
// the object is replaced or deleted afterwards. Backends that cannot
// give that guarantee must not implement Mapper.
type Mapper interface {
	Map(name string) (*mmapx.Data, ObjectInfo, error)
}

// tmpPrefix marks in-flight write temporaries in backends that need
// them (localfs). Object names may not claim it: the crash-orphan sweep
// must be able to delete anything carrying the prefix.
const tmpPrefix = ".tmp-"

// ValidateName reports whether name is usable as an object key:
// non-empty, no path separators (backends may map names to files in one
// flat directory), and not dot-prefixed (reserved for backend-internal
// temporaries). Every backend enforces it so a name valid on one is
// valid on all.
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("storage: empty object name")
	}
	if strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("storage: object name %q contains a path separator", name)
	}
	if strings.HasPrefix(name, ".") {
		return fmt.Errorf("storage: object name %q is dot-prefixed (reserved)", name)
	}
	return nil
}
