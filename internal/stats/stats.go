// Package stats provides the small statistical toolkit used throughout the
// auto-tuning experiments: means, deviations, percentiles, relative errors
// and simple correlation measures.
//
// All functions operate on float64 slices, never modify their input unless
// documented otherwise, and define sensible results for empty input (zero
// values) so callers can aggregate partial experiment results without
// special-casing.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// GeoMean returns the geometric mean of xs. All elements must be positive;
// non-positive elements are ignored. Returns 0 if no positive elements.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Min returns the smallest element of xs and its index, or (+Inf, -1) for
// empty input.
func Min(xs []float64) (float64, int) {
	best, idx := math.Inf(1), -1
	for i, x := range xs {
		if x < best {
			best, idx = x, i
		}
	}
	return best, idx
}

// Max returns the largest element of xs and its index, or (-Inf, -1) for
// empty input.
func Max(xs []float64) (float64, int) {
	best, idx := math.Inf(-1), -1
	for i, x := range xs {
		if x > best {
			best, idx = x, i
		}
	}
	return best, idx
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It copies xs, leaving it unchanged.
// Returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// RelError returns |predicted-actual| / |actual|. Returns +Inf when actual
// is zero and predicted is not, and 0 when both are zero.
func RelError(predicted, actual float64) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-actual) / math.Abs(actual)
}

// MeanRelError returns the mean of element-wise relative errors between the
// predicted and actual slices. The paper reports this as "mean error".
// Panics if the slices have different lengths.
func MeanRelError(predicted, actual []float64) float64 {
	if len(predicted) != len(actual) {
		panic("stats: MeanRelError length mismatch")
	}
	if len(predicted) == 0 {
		return 0
	}
	sum := 0.0
	for i := range predicted {
		sum += RelError(predicted[i], actual[i])
	}
	return sum / float64(len(predicted))
}

// Pearson returns the Pearson correlation coefficient between xs and ys,
// or 0 if either series is constant. Panics on length mismatch.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation between xs and ys.
// Ties are assigned their average rank.
func Spearman(xs, ys []float64) float64 {
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based fractional ranks of xs (average rank for ties).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Summary bundles the descriptive statistics reported in experiment output.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	if len(xs) == 0 {
		mn, mx = 0, 0
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    mn,
		P25:    Percentile(xs, 25),
		Median: Median(xs),
		P75:    Percentile(xs, 75),
		Max:    mx,
	}
}
