package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Errorf("Variance of singleton = %g, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !almostEqual(got, 10, 1e-9) {
		t.Errorf("GeoMean(1,100) = %g, want 10", got)
	}
	// Non-positive entries are ignored.
	if got := GeoMean([]float64{-5, 0, 4, 9}); !almostEqual(got, 6, 1e-9) {
		t.Errorf("GeoMean(-5,0,4,9) = %g, want 6", got)
	}
	if got := GeoMean([]float64{-1}); got != 0 {
		t.Errorf("GeoMean of all non-positive = %g, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if v, i := Min(xs); v != 1 || i != 1 {
		t.Errorf("Min = (%g, %d), want (1, 1)", v, i)
	}
	if v, i := Max(xs); v != 5 || i != 4 {
		t.Errorf("Max = (%g, %d), want (5, 4)", v, i)
	}
	if v, i := Min(nil); !math.IsInf(v, 1) || i != -1 {
		t.Errorf("Min(nil) = (%g, %d), want (+Inf, -1)", v, i)
	}
	if v, i := Max(nil); !math.IsInf(v, -1) || i != -1 {
		t.Errorf("Max(nil) = (%g, %d), want (-Inf, -1)", v, i)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {200, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v, %g) = %g, want %g", xs, c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %g, want 0", got)
	}
	// Input must not be modified.
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", orig)
	}
}

func TestRelError(t *testing.T) {
	if got := RelError(11, 10); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("RelError(11,10) = %g, want 0.1", got)
	}
	if got := RelError(9, 10); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("RelError(9,10) = %g, want 0.1", got)
	}
	if got := RelError(0, 0); got != 0 {
		t.Errorf("RelError(0,0) = %g, want 0", got)
	}
	if got := RelError(1, 0); !math.IsInf(got, 1) {
		t.Errorf("RelError(1,0) = %g, want +Inf", got)
	}
}

func TestMeanRelError(t *testing.T) {
	pred := []float64{11, 18}
	act := []float64{10, 20}
	if got := MeanRelError(pred, act); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("MeanRelError = %g, want 0.1", got)
	}
	if got := MeanRelError(nil, nil); got != 0 {
		t.Errorf("MeanRelError(nil,nil) = %g, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MeanRelError with mismatched lengths did not panic")
		}
	}()
	MeanRelError([]float64{1}, []float64{1, 2})
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Pearson perfect positive = %g, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Pearson perfect negative = %g, want -1", got)
	}
	if got := Pearson(xs, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Errorf("Pearson with constant series = %g, want 0", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone transform has rank correlation 1.
	xs := []float64{1, 2, 5, 9, 12}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x)
	}
	if got := Spearman(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Spearman of monotone transform = %g, want 1", got)
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	z := Summarize(nil)
	if z.N != 0 || z.Mean != 0 || z.Min != 0 || z.Max != 0 {
		t.Errorf("Summarize(nil) = %+v", z)
	}
}

// Property: mean is within [min, max] and percentiles are monotone.
func TestQuickMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				// Scale down to avoid float overflow in sums.
				xs = append(xs, math.Mod(x, 1e9))
			}
		}
		if len(xs) == 0 {
			return true
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		m := Mean(xs)
		if m < mn-1e-6 || m > mx+1e-6 {
			return false
		}
		p25, p50, p75 := Percentile(xs, 25), Percentile(xs, 50), Percentile(xs, 75)
		return p25 <= p50+1e-9 && p50 <= p75+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: Pearson is symmetric and bounded by [-1, 1].
func TestQuickPearsonBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for j := range xs {
			xs[j] = rng.NormFloat64()
			ys[j] = rng.NormFloat64()
		}
		r1 := Pearson(xs, ys)
		r2 := Pearson(ys, xs)
		if !almostEqual(r1, r2, 1e-12) {
			t.Fatalf("Pearson not symmetric: %g vs %g", r1, r2)
		}
		if r1 < -1-1e-9 || r1 > 1+1e-9 {
			t.Fatalf("Pearson out of bounds: %g", r1)
		}
	}
}
