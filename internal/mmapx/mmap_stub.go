//go:build !(linux || darwin || freebsd || netbsd || openbsd)

package mmapx

// openMapped always reports "no mapping available" on platforms without
// a wired-up mmap syscall; Open falls back to reading the file.
func openMapped(string) (*Data, error) { return nil, nil }

func unmap([]byte) error { return nil }
