// Package mmapx memory-maps read-only files and reinterprets aligned
// byte ranges as typed slices — the zero-copy substrate of the v4 model
// arena. On platforms without mmap (or when a file cannot be mapped)
// Open degrades to a plain read, so callers never need a second code
// path: they always hold a *Data and slice its Bytes.
//
// Lifecycle: a mapped Data is unmapped by Close, which is idempotent
// and also installed as a GC finalizer — a model dropped by a registry
// swap releases its address space at the next collection even if nobody
// calls Close explicitly. Any struct that keeps a typed slice aliasing
// the mapping MUST also keep a reference to the Data (an interior
// pointer into mapped memory does not root the Data object for the GC),
// which is why the model loader threads a hold reference through every
// engine it builds over an arena. Live reports the number of currently
// mapped regions; the mmap-lifecycle tests assert it returns to zero
// once the last holder is collected.
//
// Mapped files must only ever be replaced by rename (the localfs
// backend's atomic-swap discipline): the mapping pins the old inode, so
// readers of a swapped-out model keep a consistent view. Truncating a
// mapped file in place would deliver SIGBUS on access; nothing in this
// repository does that.
package mmapx

import (
	"encoding/binary"
	"os"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Data is a read-only byte region: an mmap'd file, a read-copied file,
// or caller-provided bytes. The bytes must be treated as immutable —
// mapped regions are PROT_READ and writing them faults.
type Data struct {
	b      []byte
	mapped bool
	closed atomic.Bool
}

// live counts currently mapped (not yet unmapped) regions.
var live atomic.Int64

// Live returns the number of mapped regions that have not been
// unmapped yet — the leak detector behind the mmap-lifecycle tests.
func Live() int { return int(live.Load()) }

// Open maps the named file read-only. When mapping is unavailable (non
// unix platform, empty file, or a map failure) it falls back to reading
// the file into memory; either way the returned Data serves the file's
// bytes. Mapped Data carries a finalizer, so an abandoned mapping is
// reclaimed at GC; callers that know their lifetime should still Close.
func Open(path string) (*Data, error) {
	d, err := openMapped(path)
	if err == nil && d != nil {
		live.Add(1)
		runtime.SetFinalizer(d, (*Data).Close)
		return d, nil
	}
	if err != nil {
		return nil, err
	}
	// nil, nil: mapping unsupported or not worthwhile — read-copy.
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Data{b: b}, nil
}

// FromBytes wraps caller-owned bytes in a Data (no mapping, Close is a
// no-op): the uniform handle for the memory storage backend and for
// replication installs that already hold the artifact in memory.
func FromBytes(b []byte) *Data { return &Data{b: b} }

// Bytes returns the region. The slice aliases the mapping (or the
// wrapped buffer) and is only valid until Close.
func (d *Data) Bytes() []byte { return d.b }

// Mapped reports whether the region is an actual memory mapping (false
// for the read-copy fallback and FromBytes).
func (d *Data) Mapped() bool { return d.mapped }

// Close unmaps a mapped region. Idempotent; a no-op for unmapped Data.
// After Close every slice derived from Bytes is invalid.
func (d *Data) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	if !d.mapped {
		return nil
	}
	runtime.SetFinalizer(d, nil)
	err := unmap(d.b)
	d.b = nil
	live.Add(-1)
	return err
}

// littleEndian reports whether the host matches the arena's on-disk
// byte order; reinterpretation is only valid when it does.
var littleEndian = func() bool {
	var probe [2]byte
	binary.LittleEndian.PutUint16(probe[:], 1)
	return binary.NativeEndian.Uint16(probe[:]) == 1
}()

// aligned reports whether b's data pointer is a multiple of align.
func aligned(b []byte, align uintptr) bool {
	return uintptr(unsafe.Pointer(unsafe.SliceData(b)))%align == 0
}

// Float64s reinterprets b as little-endian float64s in place. ok is
// false — and the caller must copy-decode instead — when the host is
// big-endian, b's length is not a multiple of 8, or b is misaligned.
func Float64s(b []byte) (s []float64, ok bool) {
	if !littleEndian || len(b)%8 != 0 || !aligned(b, 8) {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8), true
}

// Int64s reinterprets b as little-endian int64s in place (see Float64s).
func Int64s(b []byte) (s []int64, ok bool) {
	if !littleEndian || len(b)%8 != 0 || !aligned(b, 8) {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8), true
}

// Int32s reinterprets b as little-endian int32s in place (see Float64s).
func Int32s(b []byte) (s []int32, ok bool) {
	if !littleEndian || len(b)%4 != 0 || !aligned(b, 4) {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/4), true
}

// Int16s reinterprets b as little-endian int16s in place (see Float64s).
func Int16s(b []byte) (s []int16, ok bool) {
	if !littleEndian || len(b)%2 != 0 || !aligned(b, 2) {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	return unsafe.Slice((*int16)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/2), true
}

// Int8s reinterprets b as int8s in place; byte order and alignment are
// trivial, so it always succeeds.
func Int8s(b []byte) []int8 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int8)(unsafe.Pointer(unsafe.SliceData(b))), len(b))
}
