//go:build linux || darwin || freebsd || netbsd || openbsd

package mmapx

import (
	"os"
	"syscall"
)

// openMapped maps path read-only. It returns (nil, nil) when the file
// is empty or the kernel refuses the mapping, signalling Open to take
// the read-copy fallback instead of failing the load.
func openMapped(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil
	}
	return &Data{b: b, mapped: true}, nil
}

func unmap(b []byte) error { return syscall.Munmap(b) }
