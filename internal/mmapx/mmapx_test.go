package mmapx

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
	"unsafe"
)

func TestOpenServesFileBytes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	want := bytes.Repeat([]byte{0xa5, 0x5a, 0x01, 0xfe}, 1024)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer d.Close()
	if !bytes.Equal(d.Bytes(), want) {
		t.Fatalf("Bytes mismatch: got %d bytes", len(d.Bytes()))
	}
	if runtime.GOOS == "linux" && !d.Mapped() {
		t.Fatalf("expected a real mapping on linux")
	}
}

func TestOpenEmptyFileFallsBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer d.Close()
	if d.Mapped() {
		t.Fatalf("empty file must not be mapped")
	}
	if len(d.Bytes()) != 0 {
		t.Fatalf("expected empty bytes, got %d", len(d.Bytes()))
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatalf("expected an error for a missing file")
	}
}

func TestCloseIsIdempotentAndCountsLive(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	if err := os.WriteFile(path, make([]byte, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	before := Live()
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mapped() && Live() != before+1 {
		t.Fatalf("Live = %d, want %d", Live(), before+1)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if Live() != before {
		t.Fatalf("Live = %d after Close, want %d", Live(), before)
	}
}

func TestFinalizerUnmapsDroppedData(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	if err := os.WriteFile(path, make([]byte, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	before := Live()
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Mapped() {
		t.Skip("no real mapping on this platform")
	}
	d = nil
	_ = d
	deadline := time.Now().Add(5 * time.Second)
	for Live() != before {
		if time.Now().After(deadline) {
			t.Fatalf("mapping leaked: Live = %d, want %d", Live(), before)
		}
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
}

func TestFromBytes(t *testing.T) {
	b := []byte{1, 2, 3}
	d := FromBytes(b)
	if d.Mapped() {
		t.Fatalf("FromBytes must not be mapped")
	}
	if !bytes.Equal(d.Bytes(), b) {
		t.Fatalf("Bytes mismatch")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// alignedBuf returns an 8-byte-aligned buffer of n bytes (backed by a
// []uint64 so the alignment is guaranteed, not incidental); slicing a
// byte off the front yields a deliberately misaligned view.
func alignedBuf(n int) []byte {
	raw := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(raw))), len(raw)*8)[:n]
}

func TestFloat64sRoundTrip(t *testing.T) {
	vals := []float64{0, 1.5, -2.25, math.Pi, math.Inf(1)}
	buf := alignedBuf(8 * len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	got, ok := Float64s(buf)
	if !ok {
		t.Fatalf("Float64s refused an aligned buffer")
	}
	for i, v := range vals {
		if got[i] != v {
			t.Fatalf("got[%d] = %v, want %v", i, got[i], v)
		}
	}
	if _, ok := Float64s(buf[:12]); ok {
		t.Fatalf("accepted a length not a multiple of 8")
	}
}

func TestIntReinterpretation(t *testing.T) {
	buf := alignedBuf(16)
	binary.LittleEndian.PutUint64(buf[0:], uint64(0xfffffffffffffff6)) // -10
	binary.LittleEndian.PutUint64(buf[8:], 10)
	if s, ok := Int64s(buf); !ok || s[0] != -10 || s[1] != 10 {
		t.Fatalf("Int64s: ok=%v s=%v", ok, s)
	}
	binary.LittleEndian.PutUint32(buf[0:], uint32(0xfffffe00)) // -512
	if s, ok := Int32s(buf[:4]); !ok || s[0] != -512 {
		t.Fatalf("Int32s: ok=%v s=%v", ok, s)
	}
	binary.LittleEndian.PutUint16(buf[0:], uint16(0x8000)) // -32768
	if s, ok := Int16s(buf[:2]); !ok || s[0] != -32768 {
		t.Fatalf("Int16s: ok=%v s=%v", ok, s)
	}
	buf[0] = 0x80
	if s := Int8s(buf[:1]); s[0] != -128 {
		t.Fatalf("Int8s: s=%v", s)
	}
	if s := Int8s(nil); s != nil {
		t.Fatalf("Int8s(nil) = %v, want nil", s)
	}
}

func TestMisalignedRejected(t *testing.T) {
	buf := alignedBuf(24)
	if _, ok := Float64s(buf[1:17]); ok {
		t.Fatalf("Float64s accepted a misaligned buffer")
	}
	if _, ok := Int64s(buf[1:17]); ok {
		t.Fatalf("Int64s accepted a misaligned buffer")
	}
	if _, ok := Int32s(buf[1:9]); ok {
		t.Fatalf("Int32s accepted a misaligned buffer")
	}
	if _, ok := Int16s(buf[1:5]); ok {
		t.Fatalf("Int16s accepted a misaligned buffer")
	}
}

func TestEmptyReinterpretation(t *testing.T) {
	if s, ok := Float64s(nil); !ok || s != nil {
		t.Fatalf("Float64s(nil): ok=%v s=%v", ok, s)
	}
	if s, ok := Int16s([]byte{}); !ok || s != nil {
		t.Fatalf("Int16s(empty): ok=%v s=%v", ok, s)
	}
}
