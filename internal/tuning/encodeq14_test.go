package tuning

import (
	"testing"

	"repro/internal/ann"
	"repro/internal/devsim"
)

// TestEncodeIndexQ14MatchesFloat pins the lockstep contract between the
// float encoder and the fixed-point tables: for every index of a mixed
// space, EncodeIndexQ14 must equal ann.QuantizeQ14 applied feature-wise
// to EncodeIndex. The int16 engine's error bound assumes exactly this.
func TestEncodeIndexQ14MatchesFloat(t *testing.T) {
	space := NewSpace("q14",
		Pow2Param("wg", 1, 256),
		NewParam("unroll", 1, 2, 3, 5),
		BoolParam("vec"),
	)
	enc := NewEncoder(space)
	var fdst []float64
	var qdst []int16
	for idx := int64(0); idx < space.Size(); idx++ {
		fdst = enc.EncodeIndex(idx, fdst[:0])
		qdst = enc.EncodeIndexQ14(idx, qdst[:0])
		if len(qdst) != len(fdst) {
			t.Fatalf("idx %d: width %d != %d", idx, len(qdst), len(fdst))
		}
		for i, f := range fdst {
			if want := ann.QuantizeQ14(f); qdst[i] != want {
				t.Fatalf("idx %d feature %d: %d != QuantizeQ14(%g) = %d", idx, i, qdst[i], f, want)
			}
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range index")
		}
	}()
	enc.EncodeIndexQ14(space.Size(), nil)
}

// TestSchemaEncodeIndexQ14 pins the schema-level composition: parameter
// block from the tables, tail appended verbatim from the pre-quantised
// device vector.
func TestSchemaEncodeIndexQ14(t *testing.T) {
	space := NewSpace("q14s", Pow2Param("wg", 1, 16), BoolParam("vec"))
	s := NewFeatureSchema(space, WithDeviceBlock())
	desc := devsim.MustLookup("Nvidia K40").Descriptor()
	tail := DeviceVector(&desc, nil)
	qtail := s.QuantizeTailQ14(tail, nil)
	if len(qtail) != s.TailDim() {
		t.Fatalf("quantised tail width %d != %d", len(qtail), s.TailDim())
	}

	var fdst []float64
	var qdst []int16
	for _, idx := range []int64{0, 1, space.Size() - 1} {
		fdst = s.EncodeIndex(idx, tail, fdst[:0])
		qdst = s.EncodeIndexQ14(idx, qtail, qdst[:0])
		if len(qdst) != s.Dim() || len(fdst) != s.Dim() {
			t.Fatalf("idx %d: widths %d/%d != %d", idx, len(qdst), len(fdst), s.Dim())
		}
		for i, f := range fdst {
			if want := ann.QuantizeQ14(f); qdst[i] != want {
				t.Fatalf("idx %d feature %d: %d != %d", idx, i, qdst[i], want)
			}
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mis-sized quantised tail")
		}
	}()
	s.EncodeIndexQ14(0, qtail[:1], nil)
}
