package tuning

import (
	"math/rand"
	"testing"
)

func testSpace() *Space {
	return NewSpace("test",
		Pow2Param("wg_x", 1, 8),
		Pow2Param("wg_y", 1, 4),
		BoolParam("flag"),
		NewParam("unroll", 1, 2, 4, 8, 16),
	)
}

func TestParamConstructors(t *testing.T) {
	p := Pow2Param("p", 1, 128)
	want := []int{1, 2, 4, 8, 16, 32, 64, 128}
	if p.Arity() != len(want) {
		t.Fatalf("Pow2Param arity = %d, want %d", p.Arity(), len(want))
	}
	for i, v := range want {
		if p.Values[i] != v {
			t.Errorf("Pow2Param values[%d] = %d, want %d", i, p.Values[i], v)
		}
	}
	b := BoolParam("b")
	if b.Arity() != 2 || b.Values[0] != 0 || b.Values[1] != 1 {
		t.Errorf("BoolParam = %v", b)
	}
}

func TestParamPanics(t *testing.T) {
	cases := []func(){
		func() { NewParam("empty") },
		func() { NewParam("dup", 1, 1) },
		func() { Pow2Param("bad", 3, 8) },
		func() { Pow2Param("bad", 8, 4) },
		func() { Pow2Param("bad", 0, 4) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestParamIndexOf(t *testing.T) {
	p := NewParam("p", 1, 2, 4)
	if got := p.IndexOf(2); got != 1 {
		t.Errorf("IndexOf(2) = %d, want 1", got)
	}
	if got := p.IndexOf(3); got != -1 {
		t.Errorf("IndexOf(3) = %d, want -1", got)
	}
}

func TestSpaceSize(t *testing.T) {
	s := testSpace()
	want := int64(4 * 3 * 2 * 5)
	if s.Size() != want {
		t.Fatalf("Size = %d, want %d", s.Size(), want)
	}
}

func TestSpaceDuplicateParamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate parameter name did not panic")
		}
	}()
	NewSpace("dup", BoolParam("a"), BoolParam("a"))
}

// The index <-> config mapping must be a bijection over the whole space.
func TestIndexBijection(t *testing.T) {
	s := testSpace()
	seen := make(map[string]bool)
	for idx := int64(0); idx < s.Size(); idx++ {
		cfg := s.At(idx)
		if back := cfg.Index(); back != idx {
			t.Fatalf("At(%d).Index() = %d", idx, back)
		}
		key := cfg.String()
		if seen[key] {
			t.Fatalf("duplicate config %s", key)
		}
		seen[key] = true
	}
	if int64(len(seen)) != s.Size() {
		t.Fatalf("enumerated %d distinct configs, want %d", len(seen), s.Size())
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	s := testSpace()
	for _, idx := range []int64{-1, s.Size()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", idx)
				}
			}()
			s.At(idx)
		}()
	}
}

func TestMakeAndFromMap(t *testing.T) {
	s := testSpace()
	cfg, err := s.Make(4, 2, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Value("wg_x") != 4 || cfg.Value("unroll") != 8 || !cfg.Bool("flag") {
		t.Errorf("Make values wrong: %v", cfg)
	}
	if _, err := s.Make(3, 2, 1, 8); err == nil {
		t.Error("Make with invalid value did not fail")
	}
	if _, err := s.Make(4, 2, 1); err == nil {
		t.Error("Make with missing value did not fail")
	}

	m := cfg.Map()
	cfg2, err := s.FromMap(m)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Equal(cfg2) {
		t.Errorf("FromMap(Map()) = %v, want %v", cfg2, cfg)
	}
	delete(m, "flag")
	if _, err := s.FromMap(m); err == nil {
		t.Error("FromMap with missing key did not fail")
	}
}

func TestConfigValuePanics(t *testing.T) {
	s := testSpace()
	cfg := s.At(0)
	defer func() {
		if recover() == nil {
			t.Error("Value of unknown parameter did not panic")
		}
	}()
	cfg.Value("nope")
}

func TestConfigString(t *testing.T) {
	s := testSpace()
	cfg := s.MustMake(2, 1, 0, 4)
	if got := cfg.String(); got != "(2,1,0,4)" {
		t.Errorf("String = %q", got)
	}
}

func TestEach(t *testing.T) {
	s := testSpace()
	count := 0
	s.Each(func(Config) bool { count++; return true })
	if int64(count) != s.Size() {
		t.Errorf("Each visited %d, want %d", count, s.Size())
	}
	count = 0
	s.Each(func(Config) bool { count++; return count < 10 })
	if count != 10 {
		t.Errorf("Each early stop visited %d, want 10", count)
	}
}

func TestSampleDistinct(t *testing.T) {
	s := testSpace()
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 10, 50, int(s.Size()), int(s.Size()) + 10} {
		got := s.Sample(rng, n)
		want := n
		if int64(n) > s.Size() {
			want = int(s.Size())
		}
		if len(got) != want {
			t.Fatalf("Sample(%d) returned %d configs, want %d", n, len(got), want)
		}
		seen := make(map[int64]bool)
		for _, cfg := range got {
			idx := cfg.Index()
			if seen[idx] {
				t.Fatalf("Sample(%d) returned duplicate index %d", n, idx)
			}
			seen[idx] = true
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	s := testSpace()
	a := s.SampleIndices(rand.New(rand.NewSource(7)), 20)
	b := s.SampleIndices(rand.New(rand.NewSource(7)), 20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampling not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSampleSparsePath(t *testing.T) {
	// A large space exercises the rejection-sampling path.
	big := NewSpace("big",
		Pow2Param("a", 1, 128), Pow2Param("b", 1, 128),
		Pow2Param("c", 1, 128), Pow2Param("d", 1, 128),
		Pow2Param("e", 1, 128), Pow2Param("f", 1, 128),
		Pow2Param("g", 1, 128), Pow2Param("h", 1, 128),
	)
	if big.Size() != 1<<24 {
		t.Fatalf("big space size = %d", big.Size())
	}
	idxs := big.SampleIndices(rand.New(rand.NewSource(3)), 100)
	seen := make(map[int64]bool)
	for _, idx := range idxs {
		if idx < 0 || idx >= big.Size() {
			t.Fatalf("index %d out of range", idx)
		}
		if seen[idx] {
			t.Fatalf("duplicate index %d", idx)
		}
		seen[idx] = true
	}
}

func TestEncoderRangeAndDim(t *testing.T) {
	s := testSpace()
	e := NewEncoder(s)
	if e.Dim() != 4 {
		t.Fatalf("Dim = %d, want 4", e.Dim())
	}
	buf := make([]float64, 0, e.Dim())
	seenLo := make([]bool, e.Dim())
	seenHi := make([]bool, e.Dim())
	for idx := int64(0); idx < s.Size(); idx++ {
		buf = e.Encode(s.At(idx), buf[:0])
		for i, f := range buf {
			if f < 0 || f > 1 {
				t.Fatalf("feature %d = %g outside [0,1]", i, f)
			}
			if f == 0 {
				seenLo[i] = true
			}
			if f == 1 {
				seenHi[i] = true
			}
		}
	}
	for i := range seenLo {
		if !seenLo[i] || !seenHi[i] {
			t.Errorf("feature %d never reached both 0 and 1 (lo=%v hi=%v)", i, seenLo[i], seenHi[i])
		}
	}
}

func TestEncoderLogSpacing(t *testing.T) {
	s := NewSpace("p2", Pow2Param("x", 1, 8))
	e := NewEncoder(s)
	// Values 1,2,4,8 must be equidistant in feature space (log encoding).
	var feats []float64
	for _, v := range []int{1, 2, 4, 8} {
		cfg := s.MustMake(v)
		feats = append(feats, e.Encode(cfg, nil)[0])
	}
	for i := 1; i < len(feats); i++ {
		d := feats[i] - feats[i-1]
		if d < 0.33 || d > 0.34 {
			t.Errorf("log spacing step %d = %g, want 1/3", i, d)
		}
	}
}

func TestEncoderDistinctConfigsDistinctFeatures(t *testing.T) {
	s := testSpace()
	e := NewEncoder(s)
	seen := make(map[[4]float64]int64)
	for idx := int64(0); idx < s.Size(); idx++ {
		f := e.Encode(s.At(idx), nil)
		var key [4]float64
		copy(key[:], f)
		if prev, dup := seen[key]; dup {
			t.Fatalf("configs %d and %d encode identically", prev, idx)
		}
		seen[key] = idx
	}
}

func TestEncodeIndexMatchesEncode(t *testing.T) {
	spaces := []*Space{
		testSpace(),
		NewSpace("mixed",
			NewParam("a", 3, 5, 9), // non-pow2: linear features
			Pow2Param("b", 1, 64),
			BoolParam("c"),
			NewParam("single", 7), // degenerate: one value, zero feature
		),
	}
	for _, space := range spaces {
		enc := NewEncoder(space)
		for idx := int64(0); idx < space.Size(); idx++ {
			direct := enc.Encode(space.At(idx), nil)
			byIndex := enc.EncodeIndex(idx, nil)
			if len(direct) != len(byIndex) {
				t.Fatalf("space %q idx %d: lengths %d vs %d", space.Name(), idx, len(direct), len(byIndex))
			}
			for i := range direct {
				if direct[i] != byIndex[i] {
					t.Fatalf("space %q idx %d feature %d: Encode %v, EncodeIndex %v",
						space.Name(), idx, i, direct[i], byIndex[i])
				}
			}
		}
		// Appending to a non-empty dst leaves the prefix alone.
		dst := enc.EncodeIndex(1, []float64{-7})
		if dst[0] != -7 || len(dst) != enc.Dim()+1 {
			t.Fatalf("EncodeIndex append broke the prefix: %v", dst)
		}
	}
}

func TestEncodeIndexOutOfRangePanics(t *testing.T) {
	enc := NewEncoder(testSpace())
	for _, idx := range []int64{-1, testSpace().Size()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EncodeIndex(%d) did not panic", idx)
				}
			}()
			enc.EncodeIndex(idx, nil)
		}()
	}
}
