package tuning

import (
	"fmt"
	"strings"
)

// Config is one point in a parameter space: the value chosen for each
// parameter, in the space's parameter order. A Config is only meaningful
// together with the Space that produced it.
type Config struct {
	space  *Space
	values []int
}

// Space returns the space this configuration belongs to.
func (c Config) Space() *Space { return c.space }

// Values returns the raw parameter values in parameter order.
// The returned slice is shared; callers must not modify it.
func (c Config) Values() []int { return c.values }

// Value returns the value of the named parameter.
// It panics if the parameter does not exist, which always indicates a
// programming error in a kernel or model implementation.
func (c Config) Value(name string) int {
	i, ok := c.space.paramIndex[name]
	if !ok {
		panic(fmt.Sprintf("tuning: config has no parameter %q", name))
	}
	return c.values[i]
}

// Bool returns the value of the named parameter interpreted as a flag.
func (c Config) Bool(name string) bool { return c.Value(name) != 0 }

// Index returns the dense index of this configuration within its space.
func (c Config) Index() int64 {
	var idx int64
	for i, p := range c.space.params {
		pos := p.IndexOf(c.values[i])
		if pos < 0 {
			panic(fmt.Sprintf("tuning: config value %d invalid for parameter %q", c.values[i], p.Name))
		}
		idx = idx*int64(p.Arity()) + int64(pos)
	}
	return idx
}

// Map returns the configuration as a name -> value map. Useful for
// constructing kernel build options.
func (c Config) Map() map[string]int {
	m := make(map[string]int, len(c.values))
	for i, p := range c.space.params {
		m[p.Name] = c.values[i]
	}
	return m
}

// String renders the configuration as "(v1,v2,...)", matching the notation
// used in the paper's Figure 3.
func (c Config) String() string {
	parts := make([]string, len(c.values))
	for i, v := range c.values {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Equal reports whether two configurations have identical values.
// Configurations from different spaces are never equal.
func (c Config) Equal(o Config) bool {
	if c.space != o.space || len(c.values) != len(o.values) {
		return false
	}
	for i := range c.values {
		if c.values[i] != o.values[i] {
			return false
		}
	}
	return true
}
