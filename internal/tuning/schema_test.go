package tuning

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/devsim"
)

func TestDeviceVectorCatalog(t *testing.T) {
	names := DeviceFieldNames()
	if len(names) == 0 {
		t.Fatal("empty device field list")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Fatalf("device field list has empty or duplicate name: %v", names)
		}
		seen[n] = true
	}

	vectors := map[string][]float64{}
	for _, devName := range devsim.Names() {
		desc := devsim.MustLookup(devName).Descriptor()
		vec := DeviceVector(&desc, nil)
		if len(vec) != len(names) {
			t.Fatalf("%s: vector length %d, want %d", devName, len(vec), len(names))
		}
		for i, v := range vec {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1.5 {
				t.Errorf("%s feature %s = %v outside the normalised range", devName, names[i], v)
			}
		}
		vectors[devName] = vec
		// Determinism: the vector is a pure function of the descriptor.
		again := DeviceVector(&desc, nil)
		for i := range vec {
			if vec[i] != again[i] {
				t.Fatalf("%s: DeviceVector not deterministic at %d", devName, i)
			}
		}
	}
	// Distinct catalog devices must encode distinctly, or the portable
	// model could not tell them apart.
	devNames := devsim.Names()
	for i := 0; i < len(devNames); i++ {
		for j := i + 1; j < len(devNames); j++ {
			a, b := vectors[devNames[i]], vectors[devNames[j]]
			same := true
			for k := range a {
				if a[k] != b[k] {
					same = false
					break
				}
			}
			if same {
				t.Errorf("devices %s and %s encode identically", devNames[i], devNames[j])
			}
		}
	}
	// Appending to a non-empty dst leaves the prefix alone.
	desc := devsim.MustLookup(devsim.NvidiaK40).Descriptor()
	dst := DeviceVector(&desc, []float64{-3})
	if dst[0] != -3 || len(dst) != len(names)+1 {
		t.Fatalf("DeviceVector append broke the prefix: %v", dst)
	}
}

// TestSchemaEncodeProperty is the schema round-trip property test: over
// random spaces, configurations and devices, the full encoding is
// order-stable (identical bytes on repeated encodes), equal to the
// parameter encoding followed by the tail, and EncodeIndex is
// bit-identical to Encode of the materialised configuration.
func TestSchemaEncodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	devNames := devsim.Names()
	for trial := 0; trial < 25; trial++ {
		space := randomSpace(rng, trial)
		schema := NewFeatureSchema(space, WithDeviceBlock())
		enc := NewEncoder(space)
		desc := devsim.MustLookup(devNames[trial%len(devNames)]).Descriptor()
		tail := DeviceVector(&desc, nil)

		if schema.Dim() != enc.Dim()+len(tail) {
			t.Fatalf("trial %d: Dim %d, want %d+%d", trial, schema.Dim(), enc.Dim(), len(tail))
		}
		for probe := 0; probe < 50; probe++ {
			idx := rng.Int63n(space.Size())
			cfg := space.At(idx)
			got := schema.Encode(cfg, tail, nil)
			again := schema.Encode(cfg, tail, nil)
			byIndex := schema.EncodeIndex(idx, tail, nil)
			want := append(enc.Encode(cfg, nil), tail...)
			if len(got) != len(want) || len(byIndex) != len(want) {
				t.Fatalf("trial %d idx %d: lengths %d/%d, want %d", trial, idx, len(got), len(byIndex), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d idx %d feature %d: Encode %v, want %v", trial, idx, i, got[i], want[i])
				}
				if got[i] != again[i] {
					t.Fatalf("trial %d idx %d feature %d: encode not order-stable", trial, idx, i)
				}
				if byIndex[i] != want[i] {
					t.Fatalf("trial %d idx %d feature %d: EncodeIndex %v, want %v", trial, idx, i, byIndex[i], want[i])
				}
			}
		}
	}
}

// randomSpace builds a small random space mixing pow2, linear and bool
// parameters.
func randomSpace(rng *rand.Rand, serial int) *Space {
	n := 2 + rng.Intn(4)
	params := make([]Param, n)
	for i := range params {
		name := string(rune('a' + i))
		switch rng.Intn(3) {
		case 0:
			params[i] = Pow2Param(name, 1, 1<<(1+rng.Intn(6)))
		case 1:
			params[i] = BoolParam(name)
		default:
			k := 2 + rng.Intn(4)
			vals := make([]int, k)
			for j := range vals {
				vals[j] = 3*j + rng.Intn(3) + 1 + j // strictly increasing, no dups
			}
			params[i] = NewParam(name, vals...)
		}
	}
	return NewSpace("rand", params...)
}

// TestSchemaEncodeIndexAllocFree pins the hot-path contract: encoding
// into a dst with sufficient capacity allocates nothing.
func TestSchemaEncodeIndexAllocFree(t *testing.T) {
	space := testSpace()
	schema := NewFeatureSchema(space, WithDeviceBlock())
	desc := devsim.MustLookup(devsim.AMD7970).Descriptor()
	tail := DeviceVector(&desc, nil)
	dst := make([]float64, 0, schema.Dim())
	idx := space.Size() - 1
	allocs := testing.AllocsPerRun(200, func() {
		dst = schema.EncodeIndex(idx, tail, dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("EncodeIndex allocated %v times per run", allocs)
	}
	// The parameter-only schema shares the contract.
	pschema := ParamSchema(space)
	pdst := make([]float64, 0, pschema.Dim())
	allocs = testing.AllocsPerRun(200, func() {
		pdst = pschema.EncodeIndex(idx, nil, pdst[:0])
	})
	if allocs != 0 {
		t.Fatalf("param-only EncodeIndex allocated %v times per run", allocs)
	}
}

// TestParamSchemaMatchesEncoder pins backwards compatibility: the
// parameter-only schema is bit-identical to the historical Encoder, the
// layout of version-1 model files.
func TestParamSchemaMatchesEncoder(t *testing.T) {
	space := testSpace()
	schema := ParamSchema(space)
	enc := NewEncoder(space)
	if schema.Dim() != enc.Dim() || schema.TailDim() != 0 || schema.HasDevice() {
		t.Fatalf("param schema shape: dim %d tail %d", schema.Dim(), schema.TailDim())
	}
	for idx := int64(0); idx < space.Size(); idx++ {
		a := schema.EncodeIndex(idx, nil, nil)
		b := enc.EncodeIndex(idx, nil)
		for i := range b {
			if a[i] != b[i] {
				t.Fatalf("idx %d feature %d: schema %v, encoder %v", idx, i, a[i], b[i])
			}
		}
	}
}

func TestSchemaTailMismatchPanics(t *testing.T) {
	schema := NewFeatureSchema(testSpace(), WithDeviceBlock())
	defer func() {
		if recover() == nil {
			t.Error("encoding a device schema without a tail did not panic")
		}
	}()
	schema.Encode(testSpace().At(0), nil, nil)
}

func TestSchemaInputBlock(t *testing.T) {
	space := testSpace()
	schema := NewFeatureSchema(space, WithDeviceBlock(), WithInputBlock("w", "h"))
	if got := schema.TailDim(); got != len(DeviceFieldNames())+2 {
		t.Fatalf("tail dim %d", got)
	}
	if in := schema.InputFields(); len(in) != 2 || in[0] != "w" || in[1] != "h" {
		t.Fatalf("input fields %v", in)
	}
	desc := devsim.MustLookup(devsim.IntelI7).Descriptor()
	tail := append(DeviceVector(&desc, nil), 0.25, 0.5)
	vec := schema.Encode(space.At(3), tail, nil)
	if len(vec) != schema.Dim() {
		t.Fatalf("encoded %d features, want %d", len(vec), schema.Dim())
	}
	if vec[len(vec)-2] != 0.25 || vec[len(vec)-1] != 0.5 {
		t.Fatalf("input block not appended: %v", vec)
	}
}
