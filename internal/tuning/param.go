// Package tuning defines tuning-parameter spaces: named parameters with
// finite value sets, dense index <-> configuration bijections over the
// cartesian product, random sampling without replacement, and the feature
// schema used to feed configurations — and, for portable models, device
// descriptors — to the machine-learning model (see FeatureSchema).
//
// The package is deliberately independent of the benchmarks that declare
// spaces; device-dependent validity is expressed by predicates supplied
// by callers. Device *features* are different: the FeatureSchema's device
// block derives normalised architectural features from devsim.Descriptor,
// the lever behind cross-device performance portability.
package tuning

import (
	"fmt"
	"strings"
)

// Param is a single tuning parameter with a finite, ordered set of integer
// values. Boolean parameters use the values {0, 1}.
type Param struct {
	// Name identifies the parameter, e.g. "wg_x" or "use_local".
	Name string
	// Values lists the allowed values in the order used for indexing.
	Values []int
}

// NewParam returns a parameter with the given name and values.
// It panics if no values are provided or values are duplicated, since a
// malformed parameter invalidates every index computation built on it.
func NewParam(name string, values ...int) Param {
	if len(values) == 0 {
		panic(fmt.Sprintf("tuning: parameter %q has no values", name))
	}
	seen := make(map[int]bool, len(values))
	for _, v := range values {
		if seen[v] {
			panic(fmt.Sprintf("tuning: parameter %q has duplicate value %d", name, v))
		}
		seen[v] = true
	}
	return Param{Name: name, Values: append([]int(nil), values...)}
}

// BoolParam returns an on/off parameter with values {0, 1}.
func BoolParam(name string) Param {
	return NewParam(name, 0, 1)
}

// Pow2Param returns a parameter whose values are the powers of two from
// lo to hi inclusive. It panics unless lo and hi are powers of two with
// lo <= hi.
func Pow2Param(name string, lo, hi int) Param {
	if lo <= 0 || hi < lo || lo&(lo-1) != 0 || hi&(hi-1) != 0 {
		panic(fmt.Sprintf("tuning: Pow2Param(%q, %d, %d) invalid bounds", name, lo, hi))
	}
	var vals []int
	for v := lo; v <= hi; v *= 2 {
		vals = append(vals, v)
	}
	return NewParam(name, vals...)
}

// Arity returns the number of allowed values.
func (p Param) Arity() int { return len(p.Values) }

// IndexOf returns the position of value v in the parameter's value list,
// or -1 if v is not an allowed value.
func (p Param) IndexOf(v int) int {
	for i, pv := range p.Values {
		if pv == v {
			return i
		}
	}
	return -1
}

// String renders the parameter as "name{v1,v2,...}".
func (p Param) String() string {
	parts := make([]string, len(p.Values))
	for i, v := range p.Values {
		parts[i] = fmt.Sprint(v)
	}
	return p.Name + "{" + strings.Join(parts, ",") + "}"
}
