package tuning

import (
	"fmt"
	"math"

	"repro/internal/ann"
	"repro/internal/devsim"
)

// FeatureSchema describes the complete model-input feature layout as an
// ordered composition of blocks:
//
//   - the kernel-parameter block (always present): one feature per tuning
//     parameter, encoded exactly as Encoder does — log2 for
//     power-of-two-valued parameters, scaled to [0, 1];
//   - an optional device block: a fixed list of architectural features
//     derived from a devsim.Descriptor (see DeviceFieldNames), normalised
//     with data-independent reference scales so the same device always
//     encodes to the same vector regardless of the training set; and
//   - an optional input block: named pass-through features (e.g. problem
//     size) supplied by the caller at encode time.
//
// A schema with only the parameter block reproduces the historical
// encoding bit for bit — it is the layout of persistence-version-1 model
// files. The device block is what makes a model portable: training
// samples from several devices share one model, and prediction for an
// unseen device only needs its descriptor.
//
// The blocks after the parameter block form the "tail". The tail values
// are supplied pre-normalised by the caller (DeviceVector for the device
// block), so the hot encode path is a table lookup plus a copy — no
// transcendentals, no allocation when dst has capacity.
type FeatureSchema struct {
	enc          *Encoder
	deviceFields []string // nil = no device block
	inputFields  []string // nil = no input block
}

// SchemaOption customises a FeatureSchema at construction time.
type SchemaOption func(*FeatureSchema)

// WithDeviceBlock appends the device block (the DeviceFieldNames
// features) after the parameter block.
func WithDeviceBlock() SchemaOption {
	return func(s *FeatureSchema) { s.deviceFields = DeviceFieldNames() }
}

// WithInputBlock appends a named pass-through block after the device
// block. Values are supplied per-encode as part of the tail.
func WithInputBlock(names ...string) SchemaOption {
	return func(s *FeatureSchema) { s.inputFields = append([]string(nil), names...) }
}

// NewFeatureSchema builds a schema over the given space.
func NewFeatureSchema(space *Space, opts ...SchemaOption) *FeatureSchema {
	s := &FeatureSchema{enc: NewEncoder(space)}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// ParamSchema returns the parameter-only schema: the historical encoding
// and the layout of version-1 model files.
func ParamSchema(space *Space) *FeatureSchema {
	return NewFeatureSchema(space)
}

// Space returns the schema's tuning space.
func (s *FeatureSchema) Space() *Space { return s.enc.space }

// Dim returns the total feature-vector length across all blocks.
func (s *FeatureSchema) Dim() int { return s.enc.Dim() + s.TailDim() }

// ParamDim returns the parameter block's width (one per parameter).
func (s *FeatureSchema) ParamDim() int { return s.enc.Dim() }

// TailDim returns the combined width of the blocks after the parameter
// block (device + input).
func (s *FeatureSchema) TailDim() int { return len(s.deviceFields) + len(s.inputFields) }

// HasDevice reports whether the schema includes the device block.
func (s *FeatureSchema) HasDevice() bool { return len(s.deviceFields) > 0 }

// DeviceFields returns the device block's feature names in encode order
// (nil when the schema has no device block). The returned slice is
// shared; callers must not modify it.
func (s *FeatureSchema) DeviceFields() []string { return s.deviceFields }

// InputFields returns the input block's feature names in encode order
// (nil when the schema has no input block). The returned slice is
// shared; callers must not modify it.
func (s *FeatureSchema) InputFields() []string { return s.inputFields }

// checkTail panics unless tail matches the schema's tail width; encode
// is a hot path with no error return, and a mismatched tail always
// indicates a programming error (an unbound portable model, or a stale
// device vector from a different schema).
func (s *FeatureSchema) checkTail(tail []float64) {
	if len(tail) != s.TailDim() {
		panic(fmt.Sprintf("tuning: schema wants a %d-feature tail, got %d (portable models must be bound to a device before prediction)",
			s.TailDim(), len(tail)))
	}
}

// Encode appends cfg's full feature vector — parameter block then tail —
// to dst and returns it. tail must be the schema's pre-normalised tail
// values (device vector then input values), with length TailDim(); nil
// for a parameter-only schema.
func (s *FeatureSchema) Encode(cfg Config, tail, dst []float64) []float64 {
	s.checkTail(tail)
	dst = s.enc.Encode(cfg, dst)
	return append(dst, tail...)
}

// EncodeIndex appends the feature vector of the configuration with the
// given dense space index to dst and returns it: bit-identical to
// Encode(space.At(idx), tail, dst) but never materialises the Config —
// the allocation-free primitive of the full-space prediction sweep. It
// panics if idx is out of range, matching Space.At.
func (s *FeatureSchema) EncodeIndex(idx int64, tail, dst []float64) []float64 {
	s.checkTail(tail)
	dst = s.enc.EncodeIndex(idx, dst)
	return append(dst, tail...)
}

// checkTailQ14 is checkTail for the fixed-point tail.
func (s *FeatureSchema) checkTailQ14(tail []int16) {
	if len(tail) != s.TailDim() {
		panic(fmt.Sprintf("tuning: schema wants a %d-feature tail, got %d (portable models must be bound to a device before prediction)",
			s.TailDim(), len(tail)))
	}
}

// QuantizeTailQ14 appends the Q14 quantisation of a pre-normalised tail
// (see Encode) to dst and returns it. Callers bind a device once and
// reuse the quantised tail across the whole sweep.
func (s *FeatureSchema) QuantizeTailQ14(tail []float64, dst []int16) []int16 {
	s.checkTail(tail)
	for _, v := range tail {
		dst = append(dst, ann.QuantizeQ14(v))
	}
	return dst
}

// EncodeIndexQ14 appends the Q14 fixed-point feature vector of the
// configuration with the given dense space index — parameter block then
// tail — to dst and returns it. Every feature is exactly ann.QuantizeQ14
// of the corresponding EncodeIndex output, which is the input convention
// the int16 engine's error bound is proven against.
func (s *FeatureSchema) EncodeIndexQ14(idx int64, tail []int16, dst []int16) []int16 {
	s.checkTailQ14(tail)
	dst = s.enc.EncodeIndexQ14(idx, dst)
	return append(dst, tail...)
}

// Q14Levels returns the parameter block's per-level Q14 feature tables
// (see Encoder.Q14Levels).
func (s *FeatureSchema) Q14Levels() [][]int16 { return s.enc.Q14Levels() }

// --- device block ------------------------------------------------------

// deviceField is one descriptor-derived feature: a name and a pure,
// data-independent extractor producing a value normalised to roughly
// [0, 1] over the range of plausible OpenCL hardware.
type deviceField struct {
	name string
	get  func(d *devsim.Descriptor) float64
}

// deviceFields lists the device block's features in encode order. The
// normalisation constants are fixed reference scales, NOT fitted to any
// training set: log-scaled fields divide log2(1+x) by the log of a
// generous hardware upper bound, linear fields divide by one. Changing a
// name, an extractor or the order is a schema break: persisted v2 models
// record the names and refuse to load against a different list.
var deviceFields = []deviceField{
	{"kind", func(d *devsim.Descriptor) float64 {
		if d.Kind == devsim.GPU {
			return 1
		}
		return 0
	}},
	{"compute_units", func(d *devsim.Descriptor) float64 { return logNorm(float64(d.ComputeUnits), 8) }},      // 256 CUs
	{"simd_width", func(d *devsim.Descriptor) float64 { return logNorm(float64(d.SIMDWidth), 8) }},            // 256 lanes
	{"clock_ghz", func(d *devsim.Descriptor) float64 { return d.ClockGHz / 5 }},                               // 5 GHz
	{"flops_per_lane_cycle", func(d *devsim.Descriptor) float64 { return d.FlopsPerLaneCycle / 4 }},           // FMA x2
	{"mem_bandwidth_gbs", func(d *devsim.Descriptor) float64 { return logNorm(d.MemBandwidthGBs, 12) }},       // 4 TB/s
	{"mem_latency_ns", func(d *devsim.Descriptor) float64 { return logNorm(d.MemLatencyNs, 10) }},             // ~1 µs
	{"cache_line_bytes", func(d *devsim.Descriptor) float64 { return logNorm(float64(d.CacheLineBytes), 9) }}, // 512 B
	{"llc_bytes", func(d *devsim.Descriptor) float64 { return logNorm(float64(d.LLCBytes), 28) }},             // 256 MB
	{"lds_bytes_per_cu", func(d *devsim.Descriptor) float64 { return logNorm(float64(d.LDSBytesPerCU), 18) }}, // 256 KB
	{"local_mem_per_group", func(d *devsim.Descriptor) float64 { return logNorm(float64(d.LocalMemLimit()), 18) }},
	{"max_work_group_size", func(d *devsim.Descriptor) float64 { return logNorm(float64(d.MaxWorkGroupSize), 14) }}, // 16384
}

// logNorm maps x >= 0 into [0, ~1] as log2(1+x)/scale; the +1 keeps a
// zero-valued field (e.g. no scratchpad) at exactly 0 instead of -Inf.
func logNorm(x, scale float64) float64 {
	if x < 0 {
		x = 0
	}
	return math.Log2(1+x) / scale
}

// deviceFieldNames is the precomputed name list shared by every caller.
var deviceFieldNames = func() []string {
	names := make([]string, len(deviceFields))
	for i, f := range deviceFields {
		names[i] = f.name
	}
	return names
}()

// DeviceFieldNames returns the device block's feature names in encode
// order. The returned slice is shared; callers must not modify it.
func DeviceFieldNames() []string { return deviceFieldNames }

// DeviceVector appends the normalised device features of d to dst and
// returns it: the tail a portable model is bound with, and the per-sample
// device features of pooled training. The vector is a pure function of
// the descriptor — two processes always derive the same features for the
// same hardware.
func DeviceVector(d *devsim.Descriptor, dst []float64) []float64 {
	for _, f := range deviceFields {
		dst = append(dst, f.get(d))
	}
	return dst
}
