package tuning

import "math"

// Encoder maps configurations to fixed-length float feature vectors for
// the neural network. Following the paper (§3: "our method uses values of
// tuning parameters to directly predict execution time"), each parameter
// contributes exactly one feature. Power-of-two-valued parameters are
// encoded as log2(value) so that doubling steps are equidistant, then all
// features are scaled to [0, 1] per parameter; binary parameters map to
// {0, 1} directly. The scaling keeps sigmoid units in their sensitive
// range without requiring a data-dependent standardization pass.
type Encoder struct {
	space  *Space
	useLog []bool    // per parameter: encode as log2
	lo, hi []float64 // per parameter: raw feature range before scaling
}

// NewEncoder builds an encoder for the given space.
func NewEncoder(space *Space) *Encoder {
	e := &Encoder{
		space:  space,
		useLog: make([]bool, len(space.params)),
		lo:     make([]float64, len(space.params)),
		hi:     make([]float64, len(space.params)),
	}
	for i, p := range space.params {
		e.useLog[i] = allPositivePow2(p.Values) && len(p.Values) > 2
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range p.Values {
			f := e.raw(i, v)
			lo = math.Min(lo, f)
			hi = math.Max(hi, f)
		}
		e.lo[i], e.hi[i] = lo, hi
	}
	return e
}

// Dim returns the feature-vector length (one feature per parameter).
func (e *Encoder) Dim() int { return len(e.space.params) }

// raw returns the unscaled feature for parameter i at value v.
func (e *Encoder) raw(i, v int) float64 {
	if e.useLog[i] {
		return math.Log2(float64(v))
	}
	return float64(v)
}

// Encode appends the feature vector for cfg to dst and returns it.
// Passing a dst with sufficient capacity avoids allocation in the
// full-space prediction sweep.
func (e *Encoder) Encode(cfg Config, dst []float64) []float64 {
	for i, v := range cfg.values {
		f := e.raw(i, v)
		if e.hi[i] > e.lo[i] {
			f = (f - e.lo[i]) / (e.hi[i] - e.lo[i])
		} else {
			f = 0
		}
		dst = append(dst, f)
	}
	return dst
}

func allPositivePow2(values []int) bool {
	for _, v := range values {
		if v <= 0 || v&(v-1) != 0 {
			return false
		}
	}
	return true
}
