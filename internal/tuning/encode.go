package tuning

import (
	"math"

	"repro/internal/ann"
)

// Encoder maps configurations to fixed-length float feature vectors for
// the neural network. Following the paper (§3: "our method uses values of
// tuning parameters to directly predict execution time"), each parameter
// contributes exactly one feature. Power-of-two-valued parameters are
// encoded as log2(value) so that doubling steps are equidistant, then all
// features are scaled to [0, 1] per parameter; binary parameters map to
// {0, 1} directly. The scaling keeps sigmoid units in their sensitive
// range without requiring a data-dependent standardization pass.
//
// The per-value features are precomputed at construction time, so Encode
// and EncodeIndex are table lookups — no transcendentals in the
// full-space prediction sweep.
type Encoder struct {
	space  *Space
	useLog []bool    // per parameter: encode as log2
	lo, hi []float64 // per parameter: raw feature range before scaling
	// feat[i][pos] is the scaled feature of parameter i's pos-th value,
	// exactly as Encode would compute it.
	feat [][]float64
	// featQ14[i][pos] is feat[i][pos] in Q14 fixed point, rounded exactly
	// as ann.QuantizeQ14 — the int16 engine's input convention — so the
	// quantised sweep pays a table lookup instead of a float encode plus
	// per-feature rounding.
	featQ14 [][]int16
}

// NewEncoder builds an encoder for the given space.
func NewEncoder(space *Space) *Encoder {
	e := &Encoder{
		space:   space,
		useLog:  make([]bool, len(space.params)),
		lo:      make([]float64, len(space.params)),
		hi:      make([]float64, len(space.params)),
		feat:    make([][]float64, len(space.params)),
		featQ14: make([][]int16, len(space.params)),
	}
	for i, p := range space.params {
		e.useLog[i] = allPositivePow2(p.Values) && len(p.Values) > 2
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range p.Values {
			f := e.raw(i, v)
			lo = math.Min(lo, f)
			hi = math.Max(hi, f)
		}
		e.lo[i], e.hi[i] = lo, hi
		e.feat[i] = make([]float64, len(p.Values))
		e.featQ14[i] = make([]int16, len(p.Values))
		for pos, v := range p.Values {
			f := e.scale(i, e.raw(i, v))
			e.feat[i][pos] = f
			e.featQ14[i][pos] = ann.QuantizeQ14(f)
		}
	}
	return e
}

// Dim returns the feature-vector length (one feature per parameter).
func (e *Encoder) Dim() int { return len(e.space.params) }

// raw returns the unscaled feature for parameter i at value v.
func (e *Encoder) raw(i, v int) float64 {
	if e.useLog[i] {
		return math.Log2(float64(v))
	}
	return float64(v)
}

// scale maps parameter i's raw feature f into [0, 1].
func (e *Encoder) scale(i int, f float64) float64 {
	if e.hi[i] > e.lo[i] {
		return (f - e.lo[i]) / (e.hi[i] - e.lo[i])
	}
	return 0
}

// Encode appends the feature vector for cfg to dst and returns it.
// Passing a dst with sufficient capacity avoids allocation in the
// full-space prediction sweep.
func (e *Encoder) Encode(cfg Config, dst []float64) []float64 {
	for i, v := range cfg.values {
		pos := e.space.params[i].IndexOf(v)
		if pos < 0 {
			// Foreign config (not produced by this space): fall back to
			// computing the feature directly, as before precomputation.
			dst = append(dst, e.scale(i, e.raw(i, v)))
			continue
		}
		dst = append(dst, e.feat[i][pos])
	}
	return dst
}

// EncodeIndex appends the feature vector of the configuration with the
// given dense space index to dst and returns it. It is bit-identical to
// Encode(space.At(idx), dst) but decodes the index digits directly, never
// materialising the Config — the allocation-free primitive of the blocked
// full-space prediction sweep. It panics if idx is out of range, matching
// Space.At.
func (e *Encoder) EncodeIndex(idx int64, dst []float64) []float64 {
	if idx < 0 || idx >= e.space.size {
		panic("tuning: EncodeIndex index out of range")
	}
	base := len(dst)
	n := len(e.space.params)
	for i := 0; i < n; i++ {
		dst = append(dst, 0)
	}
	for i := n - 1; i >= 0; i-- {
		arity := int64(e.space.params[i].Arity())
		dst[base+i] = e.feat[i][idx%arity]
		idx /= arity
	}
	return dst
}

// EncodeIndexQ14 is EncodeIndex in Q14 fixed point: it appends the int16
// feature vector of the configuration with the given dense space index,
// each feature exactly ann.QuantizeQ14 of what EncodeIndex would
// produce. It is the allocation-free encode primitive of the int16
// engine's full-space sweep. It panics if idx is out of range, matching
// Space.At.
func (e *Encoder) EncodeIndexQ14(idx int64, dst []int16) []int16 {
	if idx < 0 || idx >= e.space.size {
		panic("tuning: EncodeIndexQ14 index out of range")
	}
	base := len(dst)
	n := len(e.space.params)
	for i := 0; i < n; i++ {
		dst = append(dst, 0)
	}
	for i := n - 1; i >= 0; i-- {
		arity := int64(e.space.params[i].Arity())
		dst[base+i] = e.featQ14[i][idx%arity]
		idx /= arity
	}
	return dst
}

// Q14Levels returns, per parameter in encode order, the Q14 feature
// value of each parameter level — the tables behind EncodeIndexQ14, in
// the exact digit layout of EncodeIndex (last parameter fastest). The
// int16 engine's incremental full-space sweeper is built from them. The
// returned slices are fresh copies; callers may keep them.
func (e *Encoder) Q14Levels() [][]int16 {
	out := make([][]int16, len(e.featQ14))
	for i, lv := range e.featQ14 {
		out[i] = append([]int16(nil), lv...)
	}
	return out
}

func allPositivePow2(values []int) bool {
	for _, v := range values {
		if v <= 0 || v&(v-1) != 0 {
			return false
		}
	}
	return true
}
