package tuning

import (
	"fmt"
	"math/rand"
)

// Space is the cartesian product of a list of parameters. It provides a
// dense bijection between configurations and indices in [0, Size()), which
// the auto-tuner uses both to sample training configurations without
// replacement and to sweep the entire space during prediction.
type Space struct {
	name       string
	params     []Param
	paramIndex map[string]int
	size       int64
}

// NewSpace builds a space from the given parameters. Parameter names must
// be unique.
func NewSpace(name string, params ...Param) *Space {
	s := &Space{
		name:       name,
		params:     append([]Param(nil), params...),
		paramIndex: make(map[string]int, len(params)),
		size:       1,
	}
	for i, p := range s.params {
		if _, dup := s.paramIndex[p.Name]; dup {
			panic(fmt.Sprintf("tuning: duplicate parameter %q in space %q", p.Name, name))
		}
		s.paramIndex[p.Name] = i
		s.size *= int64(p.Arity())
	}
	return s
}

// Name returns the space's name (normally the benchmark name).
func (s *Space) Name() string { return s.name }

// Params returns the parameters in declaration order.
// The returned slice is shared; callers must not modify it.
func (s *Space) Params() []Param { return s.params }

// Param returns the named parameter and whether it exists.
func (s *Space) Param(name string) (Param, bool) {
	i, ok := s.paramIndex[name]
	if !ok {
		return Param{}, false
	}
	return s.params[i], true
}

// Size returns the total number of configurations in the space.
func (s *Space) Size() int64 { return s.size }

// At returns the configuration with the given dense index.
// It panics if idx is out of range.
func (s *Space) At(idx int64) Config {
	if idx < 0 || idx >= s.size {
		panic(fmt.Sprintf("tuning: index %d out of range for space %q of size %d", idx, s.name, s.size))
	}
	values := make([]int, len(s.params))
	for i := len(s.params) - 1; i >= 0; i-- {
		arity := int64(s.params[i].Arity())
		values[i] = s.params[i].Values[idx%arity]
		idx /= arity
	}
	return Config{space: s, values: values}
}

// Make builds a configuration from explicit values, validating each against
// its parameter. The values slice must have one entry per parameter.
func (s *Space) Make(values ...int) (Config, error) {
	if len(values) != len(s.params) {
		return Config{}, fmt.Errorf("tuning: space %q needs %d values, got %d", s.name, len(s.params), len(values))
	}
	for i, v := range values {
		if s.params[i].IndexOf(v) < 0 {
			return Config{}, fmt.Errorf("tuning: value %d invalid for parameter %q", v, s.params[i].Name)
		}
	}
	return Config{space: s, values: append([]int(nil), values...)}, nil
}

// MustMake is Make but panics on error; intended for tests and literals.
func (s *Space) MustMake(values ...int) Config {
	c, err := s.Make(values...)
	if err != nil {
		panic(err)
	}
	return c
}

// FromMap builds a configuration from a name -> value map. Every parameter
// must be present.
func (s *Space) FromMap(m map[string]int) (Config, error) {
	values := make([]int, len(s.params))
	for i, p := range s.params {
		v, ok := m[p.Name]
		if !ok {
			return Config{}, fmt.Errorf("tuning: map missing parameter %q", p.Name)
		}
		values[i] = v
	}
	return s.Make(values...)
}

// Each calls fn for every configuration in the space, in index order,
// stopping early if fn returns false. It is the exhaustive-search primitive.
func (s *Space) Each(fn func(Config) bool) {
	for idx := int64(0); idx < s.size; idx++ {
		if !fn(s.At(idx)) {
			return
		}
	}
}

// Sample returns n distinct configurations drawn uniformly at random,
// using the provided random source. If n >= Size() the whole space is
// returned in random order. This is the paper's "pick random configs" step.
func (s *Space) Sample(rng *rand.Rand, n int) []Config {
	if int64(n) >= s.size {
		n = int(s.size)
	}
	idxs := sampleIndices(rng, s.size, n)
	out := make([]Config, n)
	for i, idx := range idxs {
		out[i] = s.At(idx)
	}
	return out
}

// SampleIndices returns n distinct indices drawn uniformly from [0, Size()).
func (s *Space) SampleIndices(rng *rand.Rand, n int) []int64 {
	if int64(n) >= s.size {
		n = int(s.size)
	}
	return sampleIndices(rng, s.size, n)
}

// sampleIndices draws n distinct values from [0, size) without replacement.
// For dense draws (n a sizable fraction of size) it uses a partial
// Fisher-Yates shuffle; for sparse draws it uses rejection sampling with a
// set, which avoids materializing the whole index range.
func sampleIndices(rng *rand.Rand, size int64, n int) []int64 {
	if int64(n) > size {
		n = int(size)
	}
	if size <= int64(4*n) || size <= 1<<20 {
		perm := make([]int64, size)
		for i := range perm {
			perm[i] = int64(i)
		}
		// Partial Fisher-Yates: only the first n positions are needed.
		for i := 0; i < n; i++ {
			j := int64(i) + rng.Int63n(size-int64(i))
			perm[i], perm[j] = perm[j], perm[i]
		}
		return perm[:n]
	}
	seen := make(map[int64]bool, n)
	out := make([]int64, 0, n)
	for len(out) < n {
		idx := rng.Int63n(size)
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	return out
}

// String renders the space with its parameters and total size.
func (s *Space) String() string {
	return fmt.Sprintf("space %q: %d params, %d configurations", s.name, len(s.params), s.size)
}
