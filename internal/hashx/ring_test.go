package hashx

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossInstances(t *testing.T) {
	a, b := NewRing(4), NewRing(4)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("bench%d@device%d", i%7, i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("two rings with the same shard count disagree on %q", key)
		}
	}
}

func TestRingOwnerInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		r := NewRing(n)
		for i := 0; i < 500; i++ {
			key := fmt.Sprintf("k%d", i)
			o := r.Owner(key)
			if o < 0 || o >= n {
				t.Fatalf("Owner(%q) = %d out of [0, %d)", key, o, n)
			}
		}
	}
}

func TestRingSingleShardOwnsEverything(t *testing.T) {
	r := NewRing(1)
	for i := 0; i < 100; i++ {
		if o := r.Owner(fmt.Sprintf("key%d", i)); o != 0 {
			t.Fatalf("single-shard ring assigned shard %d", o)
		}
	}
}

// TestRingBalance checks the virtual-node count keeps shard loads
// within a reasonable factor of even: no shard should own more than
// twice or less than half its fair share over a large keyset.
func TestRingBalance(t *testing.T) {
	const n, keys = 4, 20000
	r := NewRing(n)
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("benchmark%d@device %d", i%11, i))]++
	}
	fair := keys / n
	for shard, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("shard %d owns %d of %d keys (fair share %d)", shard, c, keys, fair)
		}
	}
}

// TestRingMinimalReassignment pins the consistent-hashing property:
// growing the ring by one shard must move only a minority of keys, and
// every moved key must move TO the new shard (never between old ones).
func TestRingMinimalReassignment(t *testing.T) {
	const keys = 10000
	oldRing, newRing := NewRing(3), NewRing(4)
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("bench@dev%d", i)
		o, n := oldRing.Owner(key), newRing.Owner(key)
		if o == n {
			continue
		}
		moved++
		if n != 3 {
			t.Fatalf("key %q moved from shard %d to old shard %d, not the new shard", key, o, n)
		}
	}
	// The new shard's fair share is 1/4; allow slack for imbalance.
	if moved > keys/2 {
		t.Errorf("%d of %d keys moved when adding one shard; consistent hashing should move ~1/4", moved, keys)
	}
	if moved == 0 {
		t.Error("no keys moved to the new shard at all")
	}
}

func TestRingPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRing(0) },
		func() { NewRingReplicas(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid ring parameters")
				}
			}()
			fn()
		}()
	}
}
