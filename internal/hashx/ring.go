package hashx

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring mapping string keys to one of n
// shards. Every shard owns DefaultRingReplicas points on a 64-bit
// circle (derived purely from the shard index, so every process that
// builds a Ring with the same shard count sees the identical
// assignment — no coordination, no configuration exchange); a key
// belongs to the shard owning the first point at or clockwise of the
// key's hash.
//
// Consistent hashing, rather than key-hash modulo n, keeps
// reassignment minimal when the shard count changes: growing from n to
// n+1 shards moves only the keys the new shard's points capture
// (~1/(n+1) of the keyspace), instead of reshuffling nearly
// everything.
type Ring struct {
	shards int
	points []ringPoint
}

// ringPoint is one virtual node: a position on the circle and the
// shard owning it.
type ringPoint struct {
	hash  uint64
	shard int
}

// DefaultRingReplicas is the virtual-node count per shard: enough that
// the largest shard's keyspace share stays within a few percent of
// 1/n, cheap enough that ring construction is microseconds.
const DefaultRingReplicas = 160

// NewRing builds the canonical ring over n shards (n >= 1) with the
// default replica count.
func NewRing(n int) *Ring {
	return NewRingReplicas(n, DefaultRingReplicas)
}

// NewRingReplicas builds a ring over n shards with an explicit
// virtual-node count per shard. Every caller in one deployment must
// use the same (n, replicas) pair, or owners will disagree.
func NewRingReplicas(n, replicas int) *Ring {
	if n < 1 {
		panic(fmt.Sprintf("hashx: ring needs at least 1 shard, got %d", n))
	}
	if replicas < 1 {
		panic(fmt.Sprintf("hashx: ring needs at least 1 replica per shard, got %d", replicas))
	}
	r := &Ring{shards: n, points: make([]ringPoint, 0, n*replicas)}
	for shard := 0; shard < n; shard++ {
		base := SplitMix64(uint64(shard) + 0x5ead5ead5ead5ead)
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: Combine(base, uint64(v)), shard: shard})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// A full-64-bit collision between virtual nodes is astronomically
		// unlikely; break the tie on shard index anyway so the sort (and
		// therefore ownership) stays deterministic even then.
		return a.shard < b.shard
	})
	return r
}

// Shards returns the shard count the ring was built over.
func (r *Ring) Shards() int { return r.shards }

// Owner maps a key to its owning shard in [0, Shards()).
func (r *Ring) Owner(key string) int {
	h := String(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: past the last point the circle continues at the first
	}
	return r.points[i].shard
}
