package hashx

import (
	"math"
	"testing"
)

func TestSplitMix64Deterministic(t *testing.T) {
	if SplitMix64(42) != SplitMix64(42) {
		t.Fatal("not deterministic")
	}
	if SplitMix64(1) == SplitMix64(2) {
		t.Fatal("trivial collision")
	}
}

func TestCombineOrderSensitive(t *testing.T) {
	if Combine(1, 2) == Combine(2, 1) {
		t.Error("Combine is symmetric; keys would collide")
	}
	if Combine(1, 2) != Combine(1, 2) {
		t.Error("Combine not deterministic")
	}
}

func TestStringHash(t *testing.T) {
	if String("convolution") == String("raycasting") {
		t.Error("string hash collision between benchmark names")
	}
	if String("a") != String("a") {
		t.Error("String not deterministic")
	}
}

func TestUniform01Range(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		u := Uniform01(i)
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform01(%d) = %v", i, u)
		}
	}
}

func TestUniform01Mean(t *testing.T) {
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		sum += Uniform01(uint64(i) * 2654435761)
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	var sum, sum2 float64
	n := 50000
	for i := 0; i < n; i++ {
		v := Normal(uint64(i) * 0x9e3779b97f4a7c15)
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestNormalDeterministic(t *testing.T) {
	if Normal(7) != Normal(7) {
		t.Error("Normal not deterministic")
	}
}
