// Package hashx provides the deterministic 64-bit mixing primitives used
// to derive all reproducible pseudo-randomness in the simulator: stable
// configuration keys, per-configuration model irregularity and
// per-measurement noise.
package hashx

import "math"

// SplitMix64 is the SplitMix64 finalizer: a fast, high-quality 64-bit
// mixing function.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Combine mixes two keys into one, order-sensitively.
func Combine(a, b uint64) uint64 {
	return SplitMix64(a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2)))
}

// String hashes a string to a 64-bit key (FNV-1a followed by mixing).
func String(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return SplitMix64(h)
}

// Uniform01 maps a key to a uniform float64 in [0, 1).
func Uniform01(key uint64) float64 {
	return float64(SplitMix64(key)>>11) / float64(1<<53)
}

// Normal maps a key to a standard normal deviate via the Box-Muller
// transform over two derived uniforms. Deterministic in key.
func Normal(key uint64) float64 {
	u1 := Uniform01(key)
	u2 := Uniform01(key ^ 0xa5a5a5a5a5a5a5a5)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
