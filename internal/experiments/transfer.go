package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/devsim"
	"repro/internal/tuning"
)

func init() {
	register(&Experiment{
		ID:    "transfer",
		Title: "Leave-one-device-out transfer: portable model vs per-device baseline",
		Run:   runTransfer,
	})
}

// transferParams sizes the study per scale: which benchmarks and devices
// participate, the per-device training-sample budget, and the top-M
// candidate count scored on the held-out device.
func transferParams(scale Scale) (benches, devices []string, nTrain, M int) {
	switch scale {
	case Paper:
		return []string{"convolution", "stereo", "raycasting"},
			devsim.Names(), 2000, 50
	case Smoke:
		// M is generous relative to N: the tiny smoke ensemble's top
		// predictions often violate GPU work-group limits, and scoring a
		// candidate (one TrueTime) is much cheaper than training.
		return []string{"convolution"},
			[]string{devsim.IntelI7, devsim.NvidiaK40, devsim.AMD7970}, 150, 100
	default: // Quick
		return []string{"convolution", "stereo"},
			devsim.Names(), 500, 30
	}
}

// transferModelConfig shrinks the paper's ensemble at the smaller scales
// so the 2×K-fold training loop stays in budget; portable selects the
// device-featurised schema.
func transferModelConfig(scale Scale, seed int64, portable bool) core.ModelConfig {
	cfg := core.DefaultModelConfig(seed)
	switch scale {
	case Smoke:
		cfg.Ensemble.K = 3
		cfg.Ensemble.Hidden = 8
		cfg.Ensemble.Train.Epochs = 150
	case Quick:
		cfg.Ensemble.K = 5
		cfg.Ensemble.Hidden = 16
	}
	cfg.DeviceFeatures = portable
	return cfg
}

// deviceData is one device's contribution to the study: its measurer,
// feature vector, gathered training samples and true optimum.
type deviceData struct {
	name     string
	meas     *core.SimMeasurer
	vec      []float64
	samples  []core.Sample // Device left nil; attached when pooling
	trueBest float64
}

// runTransfer is the leave-one-device-out transfer study. For every
// benchmark it gathers the same per-device training budget on each
// device, then for every held-out device h trains
//
//   - the portable model on the other K−1 devices' pooled samples
//     (device features attached, ModelConfig.DeviceFeatures), bound to
//     h's descriptor at prediction time — h contributed nothing; and
//   - the per-device baseline on h's own samples (the paper's tuner),
//
// scores each model's top-M predicted configurations with h's noise-free
// ground truth, and reports the achieved fraction of the true optimum
// (1.0 = the model's candidate set contains the optimum). The portable
// column is the PR's acceptance story: how close one pooled model gets
// on hardware it never trained on.
func runTransfer(ctx *Ctx) (*Report, error) {
	benches, deviceNames, nTrain, M := transferParams(ctx.Scale)

	t := &Table{
		Title: fmt.Sprintf("Achieved fraction of true optimum on the held-out device (N=%d per device, top-%d measured)", nTrain, M),
		Columns: []string{"benchmark", "held-out device", "portable frac", "baseline frac",
			"pooled N", "own N", "portable invalid", "baseline invalid"},
	}

	for _, benchName := range benches {
		b := bench.MustLookup(benchName)
		devs := make([]*deviceData, 0, len(deviceNames))
		for di, devName := range deviceNames {
			dd, err := gatherDeviceData(ctx, b, devName, nTrain, ctx.Seed+int64(di)*7919)
			if err != nil {
				return nil, err
			}
			ctx.logf("  %s on %s: %d samples, true optimum %.4f ms",
				benchName, devName, len(dd.samples), dd.trueBest*1e3)
			devs = append(devs, dd)
		}

		for hi, held := range devs {
			// Portable: pool every other device's samples, tagging each
			// with its device's feature vector.
			var pooled []core.Sample
			for di, dd := range devs {
				if di == hi {
					continue
				}
				for _, sm := range dd.samples {
					sm.Device = dd.vec
					pooled = append(pooled, sm)
				}
			}
			pcfg := transferModelConfig(ctx.Scale, ctx.Seed, true)
			portable, err := core.TrainModel(b.Space(), pooled, nil, pcfg)
			if err != nil {
				return nil, err
			}
			bound, err := portable.WithDevice(held.vec)
			if err != nil {
				return nil, err
			}
			pBest, pInvalid, err := scoreTopM(bound, held, M)
			if err != nil {
				return nil, err
			}

			// Baseline: the per-device model trained on the held-out
			// device's own budget — data the portable model never saw.
			bcfg := transferModelConfig(ctx.Scale, ctx.Seed, false)
			baseline, err := core.TrainModel(b.Space(), held.samples, nil, bcfg)
			if err != nil {
				return nil, err
			}
			bBest, bInvalid, err := scoreTopM(baseline, held, M)
			if err != nil {
				return nil, err
			}

			t.Add(benchName, held.name,
				fraction(held.trueBest, pBest), fraction(held.trueBest, bBest),
				fmt.Sprint(len(pooled)), fmt.Sprint(len(held.samples)),
				fmt.Sprint(pInvalid), fmt.Sprint(bInvalid))
			ctx.logf("  %s held-out %s: portable %s of optimum, baseline %s",
				benchName, held.name, fraction(held.trueBest, pBest), fraction(held.trueBest, bBest))
		}
	}
	return &Report{Tables: []*Table{t}}, nil
}

// gatherDeviceData measures nTrain valid random configurations of b on
// the named device and sweeps the space for the true optimum.
func gatherDeviceData(ctx *Ctx, b bench.Benchmark, devName string, nTrain int, seed int64) (*deviceData, error) {
	dev, err := devsim.Lookup(devName)
	if err != nil {
		return nil, err
	}
	meas, err := core.NewSimMeasurer(b, dev, bench.Size{}, 3)
	if err != nil {
		return nil, err
	}
	desc := dev.Descriptor()
	dd := &deviceData{name: devName, meas: meas, vec: tuning.DeviceVector(&desc, nil)}

	space := b.Space()
	rng := rand.New(rand.NewSource(seed))
	budget := 4*nTrain + 2000
	if int64(budget) > space.Size() {
		budget = int(space.Size())
	}
	cctx := ctx.context()
	for _, idx := range space.SampleIndices(rng, budget) {
		if len(dd.samples) >= nTrain {
			break
		}
		cfg := space.At(idx)
		secs, err := meas.Measure(cctx, cfg)
		if err != nil {
			if devsim.IsInvalid(err) {
				continue
			}
			return nil, err
		}
		dd.samples = append(dd.samples, core.Sample{Config: cfg, Seconds: secs})
	}
	if len(dd.samples) == 0 {
		return nil, fmt.Errorf("transfer: no valid samples for %s on %s", b.Name(), devName)
	}

	// Noise-free ground truth: the best TrueTime over the whole space.
	dd.trueBest = math.Inf(1)
	var sweepErr error
	space.Each(func(cfg tuning.Config) bool {
		if err := cctx.Err(); err != nil {
			sweepErr = err
			return false
		}
		t, err := meas.TrueTime(cfg)
		if err != nil {
			return true // invalid on this device
		}
		if t < dd.trueBest {
			dd.trueBest = t
		}
		return true
	})
	if sweepErr != nil {
		return nil, sweepErr
	}
	if math.IsInf(dd.trueBest, 1) {
		return nil, fmt.Errorf("transfer: every configuration invalid for %s on %s", b.Name(), devName)
	}
	return dd, nil
}

// scoreTopM evaluates a model's top-M candidate set against the held-out
// device's ground truth: the best TrueTime among the valid candidates,
// plus how many candidates were invalid there.
func scoreTopM(m *core.Model, held *deviceData, M int) (best float64, invalid int, err error) {
	best = math.Inf(1)
	for _, p := range m.TopM(M) {
		t, terr := held.meas.TrueTime(m.Space().At(p.Index))
		if terr != nil {
			if devsim.IsInvalid(terr) {
				invalid++
				continue
			}
			return 0, 0, terr
		}
		if t < best {
			best = t
		}
	}
	// best stays +Inf when every candidate was invalid on the held-out
	// device — the paper's §7 "no prediction at all" case, which
	// fraction renders as "-".
	return best, invalid, nil
}

// fraction renders trueBest/achieved — 1.000 means the model's candidate
// set contained the true optimum; "-" means no valid candidate at all.
func fraction(trueBest, achieved float64) string {
	if math.IsInf(achieved, 1) || achieved <= 0 {
		return "-"
	}
	return f3(trueBest / achieved)
}
