package experiments

import (
	"fmt"

	"repro/internal/bench"
)

func init() {
	register(&Experiment{
		ID:    "table1",
		Title: "Benchmarks used (paper Table 1) and configuration-space sizes",
		Run:   runTable1,
	})
	register(&Experiment{
		ID:    "table2",
		Title: "Tuning parameters and their possible values (paper Table 2)",
		Run:   runTable2,
	})
}

func runTable1(ctx *Ctx) (*Report, error) {
	t := &Table{
		Title:   "Benchmarks",
		Columns: []string{"benchmark", "description", "parameters", "space size"},
	}
	for _, b := range bench.All() {
		t.Add(b.Name(), b.Description(),
			fmt.Sprint(len(b.Space().Params())),
			fmt.Sprint(b.Space().Size()))
	}
	return &Report{Tables: []*Table{t}}, nil
}

func runTable2(ctx *Ctx) (*Report, error) {
	rep := &Report{}
	for _, b := range bench.All() {
		t := &Table{
			Title:   b.Name(),
			Columns: []string{"parameter", "possible values"},
		}
		for _, p := range b.Space().Params() {
			vals := ""
			for i, v := range p.Values {
				if i > 0 {
					vals += ","
				}
				vals += fmt.Sprint(v)
			}
			t.Add(p.Name, vals)
		}
		rep.Tables = append(rep.Tables, t)
	}
	return rep, nil
}
