// Package experiments contains one driver per table and figure of the
// paper's evaluation (§2 and §6): it regenerates the motivational
// cross-device study (Fig. 1), the benchmark/parameter tables (Tables 1-2),
// the model-accuracy curves (Figs. 4-7), the predicted-vs-actual scatters
// (Figs. 8-10), the auto-tuner quality grids (Figs. 11-13), the
// large-space comparison (Fig. 14) and the §6 tuning-cost accounting.
//
// Every experiment produces Tables (text + CSV) so results can be diffed
// against the paper's reported numbers; EXPERIMENTS.md records that
// comparison.
package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
)

// Scale selects the experiment size.
type Scale int

const (
	// Quick runs reduced sweeps (fewer training sizes, repetitions and
	// random draws) sized for minutes, not hours.
	Quick Scale = iota
	// Paper runs the full sweeps of the paper.
	Paper
	// Smoke runs minimal versions for tests and benchmarks.
	Smoke
)

// ParseScale converts a -scale flag value.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "quick":
		return Quick, nil
	case "paper":
		return Paper, nil
	case "smoke":
		return Smoke, nil
	}
	return 0, fmt.Errorf("experiments: unknown scale %q (quick, paper, smoke)", s)
}

// String returns the scale's flag value.
func (s Scale) String() string {
	switch s {
	case Paper:
		return "paper"
	case Smoke:
		return "smoke"
	default:
		return "quick"
	}
}

// Ctx carries experiment-wide settings.
type Ctx struct {
	// Scale selects sweep sizes.
	Scale Scale
	// Seed drives all sampling and model initialization.
	Seed int64
	// Log receives progress lines (nil silences them).
	Log io.Writer
	// Context, when set, cancels in-flight measurements — ^C on
	// cmd/experiments aborts a sweep mid-gather instead of at the next
	// experiment boundary. Nil means context.Background().
	Context context.Context
}

func (c *Ctx) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// context returns the cancellation context for measurements.
func (c *Ctx) context() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// runStrategy builds a session over m and executes the named registered
// strategy under the experiment's cancellation context.
func runStrategy(ctx *Ctx, m core.Measurer, name string, opts core.Options) (*core.Result, error) {
	s, err := core.NewSession(m, opts)
	if err != nil {
		return nil, err
	}
	return s.Run(ctx.context(), name)
}

// Table is a rectangular result with named columns, renderable as text
// or CSV.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "## %s\n\n", t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(w, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w)
	for i := range t.Columns {
		fmt.Fprintf(w, "%s  ", strings.Repeat("-", widths[i]))
	}
	fmt.Fprintln(w)
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(w, "%-*s  ", widths[i], cell)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values (cells with commas are
// quoted).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		_, err := io.WriteString(w, strings.Join(parts, ",")+"\n")
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Report is the result of one experiment.
type Report struct {
	ID     string
	Title  string
	Tables []*Table
	// Elapsed is the wall-clock runtime of the experiment.
	Elapsed time.Duration
}

// WriteText renders all tables to w.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s (elapsed %s)\n\n", r.ID, r.Title, r.Elapsed.Round(time.Millisecond))
	for _, t := range r.Tables {
		t.Render(w)
	}
}

// SaveCSV writes each table to dir as <id>_<n>.csv.
func (r *Report) SaveCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range r.Tables {
		name := fmt.Sprintf("%s_%d.csv", r.ID, i)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := t.CSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Experiment is a registered, runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx *Ctx) (*Report, error)
}

var registry = map[string]*Experiment{}

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// IDs returns all experiment ids in run order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (*Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return e, nil
}

// Run executes the experiment with timing.
func (e *Experiment) Execute(ctx *Ctx) (*Report, error) {
	start := time.Now()
	ctx.logf("== %s: %s (scale %s)", e.ID, e.Title, ctx.Scale)
	rep, err := e.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", e.ID, err)
	}
	rep.ID = e.ID
	rep.Title = e.Title
	rep.Elapsed = time.Since(start)
	ctx.logf("== %s done in %s", e.ID, rep.Elapsed.Round(time.Millisecond))
	return rep, nil
}

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f3 formats a float with three decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// pct formats a fraction as a percentage with one decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// ms formats seconds as milliseconds.
func ms(v float64) string { return fmt.Sprintf("%.3f", v*1e3) }
