package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/devsim"
)

func init() {
	register(&Experiment{
		ID: "fig1",
		Title: "Motivational example: slowdown of each device's best convolution " +
			"configuration on every other device (paper Figure 1)",
		Run: runFig1,
	})
}

// runFig1 reproduces the paper's §2 study: exhaustively find the best
// convolution configuration per device, then measure all three
// configurations on all three devices and report slowdowns relative to
// each device's own best.
func runFig1(ctx *Ctx) (*Report, error) {
	b := bench.MustLookup("convolution")
	size := bench.Size{}
	if ctx.Scale == Smoke {
		size = bench.Size{W: 512, H: 512}
	}
	devices := devsim.PaperDevices()

	type entry struct {
		meas *core.SimMeasurer
		best core.Result
	}
	entries := make(map[string]*entry, len(devices))
	for _, dev := range devices {
		m, err := core.NewSimMeasurer(b, dev, size, 3)
		if err != nil {
			return nil, err
		}
		ex, err := runStrategy(ctx, m, "exhaustive", core.Options{})
		if err != nil {
			return nil, err
		}
		if !ex.Found {
			return nil, fmt.Errorf("fig1: no valid configuration on %s", dev.Name())
		}
		entries[dev.Name()] = &entry{meas: m, best: *ex}
		ctx.logf("fig1: best on %s: %v (%.3f ms; %d valid, %d invalid)",
			dev.Name(), ex.Best, ex.BestSeconds*1e3, ex.Measured, ex.Invalid)
	}

	bests := &Table{
		Title:   "Per-device best configurations (exhaustive search)",
		Columns: []string{"device", "best config", "time (ms)", "valid configs", "invalid configs"},
	}
	for _, dev := range devices {
		e := entries[dev.Name()]
		bests.Add(dev.Name(), e.best.Best.String(), ms(e.best.BestSeconds),
			fmt.Sprint(e.best.Measured), fmt.Sprint(e.best.Invalid))
	}

	matrix := &Table{
		Title:   "Slowdown of transplanted configurations (rows: run on; columns: config from)",
		Columns: []string{"run on \\ config from"},
	}
	for _, from := range devices {
		matrix.Columns = append(matrix.Columns, from.Name())
	}
	for _, on := range devices {
		row := []string{on.Name()}
		own := entries[on.Name()]
		ownTime, err := own.meas.TrueTime(own.best.Best)
		if err != nil {
			return nil, err
		}
		for _, from := range devices {
			t, err := own.meas.TrueTime(entries[from.Name()].best.Best)
			if err != nil {
				if devsim.IsInvalid(err) {
					row = append(row, "invalid")
					continue
				}
				return nil, err
			}
			row = append(row, f2(t/ownTime))
		}
		matrix.Add(row...)
	}
	return &Report{Tables: []*Table{bests, matrix}}, nil
}
