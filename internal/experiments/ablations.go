package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/devsim"
	"repro/internal/stats"
)

func init() {
	register(&Experiment{
		ID: "ablation",
		Title: "Ablations of the paper's design choices: log transform (§5.2), bagging k (§5.2), " +
			"hidden-layer size (§5.2), second stage (§5.3) and invalid-config penalty (§7 future work)",
		Run: runAblations,
	})
}

func runAblations(ctx *Ctx) (*Report, error) {
	nTrain, nEval := 1000, 300
	if ctx.Scale == Smoke {
		nTrain, nEval = 200, 100
	}
	b := bench.MustLookup("convolution")
	dev := devsim.MustLookup(devsim.NvidiaK40)
	m, err := core.NewSimMeasurer(b, dev, bench.Size{}, 3)
	if err != nil {
		return nil, err
	}

	// Shared train/eval split for all model-side ablations.
	train, evalSet, err := ablationSplit(ctx.context(), m, nTrain, nEval, ctx.Seed+997)
	if err != nil {
		return nil, err
	}

	evalErr := func(mc core.ModelConfig) (float64, error) {
		model, err := core.TrainModel(m.Space(), train, nil, mc)
		if err != nil {
			return 0, err
		}
		s := model.NewScratch()
		var pred, act []float64
		for _, smp := range evalSet {
			pred = append(pred, model.Predict(smp.Config, s))
			act = append(act, smp.Seconds)
		}
		return stats.MeanRelError(pred, act), nil
	}

	rep := &Report{}

	// --- Log transform ------------------------------------------------------
	logT := &Table{
		Title:   "Ablation: training on log(time) vs raw seconds (convolution, K40)",
		Columns: []string{"target", "mean relative error"},
	}
	for _, useLog := range []bool{true, false} {
		mc := core.DefaultModelConfig(ctx.Seed + 1)
		mc.LogTransform = useLog
		e, err := evalErr(mc)
		if err != nil {
			return nil, err
		}
		name := "log(time) (paper)"
		if !useLog {
			name = "raw seconds"
		}
		logT.Add(name, pct(e))
	}
	rep.Tables = append(rep.Tables, logT)

	// --- Bagging k ------------------------------------------------------------
	bag := &Table{
		Title:   "Ablation: bagging ensemble size k (paper uses 11)",
		Columns: []string{"k", "mean relative error"},
	}
	for _, k := range []int{1, 3, 11} {
		mc := core.DefaultModelConfig(ctx.Seed + 2)
		mc.Ensemble.K = k
		e, err := evalErr(mc)
		if err != nil {
			return nil, err
		}
		bag.Add(fmt.Sprint(k), pct(e))
	}
	rep.Tables = append(rep.Tables, bag)

	// --- Hidden-layer size ------------------------------------------------------
	hidden := &Table{
		Title:   "Ablation: hidden-layer width (paper uses 30 sigmoid neurons)",
		Columns: []string{"hidden neurons", "mean relative error"},
	}
	for _, h := range []int{5, 30, 100} {
		mc := core.DefaultModelConfig(ctx.Seed + 3)
		mc.Ensemble.Hidden = h
		e, err := evalErr(mc)
		if err != nil {
			return nil, err
		}
		hidden.Add(fmt.Sprint(h), pct(e))
	}
	rep.Tables = append(rep.Tables, hidden)

	// --- Second stage ------------------------------------------------------------
	second := &Table{
		Title:   "Ablation: second-stage size M (M=1 trusts the model blindly)",
		Columns: []string{"M", "slowdown vs global optimum"},
	}
	ex, err := runStrategy(ctx, m, "exhaustive", core.Options{})
	if err != nil {
		return nil, err
	}
	mc := core.DefaultModelConfig(ctx.Seed + 4)
	model, err := core.TrainModel(m.Space(), train, nil, mc)
	if err != nil {
		return nil, err
	}
	top := model.TopM(200)
	times := make([]float64, len(top))
	for i, p := range top {
		secs, err := m.Measure(ctx.context(), m.Space().At(p.Index))
		if err != nil {
			if devsim.IsInvalid(err) {
				times[i] = math.Inf(1)
				continue
			}
			return nil, err
		}
		times[i] = secs
	}
	for _, M := range []int{1, 10, 50, 100, 200} {
		best := math.Inf(1)
		for i := 0; i < M && i < len(times); i++ {
			if times[i] < best {
				best = times[i]
			}
		}
		if math.IsInf(best, 1) {
			second.Add(fmt.Sprint(M), "- (all invalid)")
		} else {
			second.Add(fmt.Sprint(M), f3(best/ex.BestSeconds))
		}
	}
	rep.Tables = append(rep.Tables, second)

	// --- Invalid-config penalty (the paper's §7 suggested improvement) --------
	invalid := &Table{
		Title: "Extension: penalty-labelled invalid configs vs ignoring them " +
			"(stereo on K40, share of second stage that is invalid)",
		Columns: []string{"invalid handling", "2nd-stage invalid", "tuner found result"},
	}
	stereoB := bench.MustLookup("stereo")
	sm, err := core.NewSimMeasurer(stereoB, dev, bench.Size{}, 3)
	if err != nil {
		return nil, err
	}
	nStereo := nTrain
	for _, penalty := range []float64{0, 2} {
		opts := core.Options{
			TrainingSamples: nStereo,
			SecondStage:     100,
			Seed:            ctx.Seed + 5,
			Model:           core.DefaultModelConfig(ctx.Seed + 5),
		}
		opts.Model.InvalidPenalty = penalty
		res, err := runStrategy(ctx, sm, "ml", opts)
		if err != nil {
			return nil, err
		}
		name := "ignore (paper)"
		if penalty > 0 {
			name = fmt.Sprintf("penalty %gx slowest", penalty)
		}
		invalid.Add(name, fmt.Sprint(res.InvalidSecond), fmt.Sprint(res.Found))
	}
	rep.Tables = append(rep.Tables, invalid)

	return rep, nil
}

// ablationSplit gathers disjoint valid train and eval samples.
func ablationSplit(ctx context.Context, m core.Measurer, nTrain, nEval int, seed int64) (train, evalSet []core.Sample, err error) {
	space := m.Space()
	rng := rand.New(rand.NewSource(seed))
	budget := 4*(nTrain+nEval) + 2000
	if int64(budget) > space.Size() {
		budget = int(space.Size())
	}
	for _, idx := range space.SampleIndices(rng, budget) {
		if len(train) >= nTrain && len(evalSet) >= nEval {
			break
		}
		cfg := space.At(idx)
		secs, err := m.Measure(ctx, cfg)
		if err != nil {
			if devsim.IsInvalid(err) {
				continue
			}
			return nil, nil, err
		}
		if len(train) < nTrain {
			train = append(train, core.Sample{Config: cfg, Seconds: secs})
		} else {
			evalSet = append(evalSet, core.Sample{Config: cfg, Seconds: secs})
		}
	}
	return train, evalSet, nil
}
