package experiments

import (
	"context"
	"math/rand"

	"repro/internal/core"
	"repro/internal/devsim"
	"repro/internal/stats"
	"repro/internal/tuning"
)

// EvalResult is the outcome of one model-accuracy evaluation: train on N
// valid random configurations, predict a disjoint held-out set of valid
// configurations, and report the mean relative error — the procedure
// behind the paper's Figures 4-7.
type EvalResult struct {
	// Train is the number of valid training samples actually gathered.
	Train int
	// Eval is the held-out set size.
	Eval int
	// MeanRelErr is mean(|predicted-actual| / actual) over the held-out
	// set (the paper's "mean error").
	MeanRelErr float64
	// Model is the trained model (for scatter plots etc.).
	Model *core.Model
	// Actual and Predicted align element-wise over the held-out set.
	Actual, Predicted []float64
	// EvalConfigs are the held-out configurations.
	EvalConfigs []tuning.Config
}

// EvalModel trains a model with nTrain valid samples and scores it on
// nEval disjoint valid samples. All draws and network initializations
// derive from seed; ctx cancels the gathering.
func EvalModel(ctx context.Context, m core.Measurer, nTrain, nEval int, seed int64) (*EvalResult, error) {
	space := m.Space()
	rng := rand.New(rand.NewSource(seed))

	// One stream of distinct indices: first fill the training set with
	// valid measurements, then the held-out set.
	budget := 4*(nTrain+nEval) + 2000
	if int64(budget) > space.Size() {
		budget = int(space.Size())
	}
	idxs := space.SampleIndices(rng, budget)

	var train []core.Sample
	var evalSet []core.Sample
	for _, idx := range idxs {
		if len(train) >= nTrain && len(evalSet) >= nEval {
			break
		}
		cfg := space.At(idx)
		secs, err := m.Measure(ctx, cfg)
		if err != nil {
			if devsim.IsInvalid(err) {
				continue
			}
			return nil, err
		}
		if len(train) < nTrain {
			train = append(train, core.Sample{Config: cfg, Seconds: secs})
		} else {
			evalSet = append(evalSet, core.Sample{Config: cfg, Seconds: secs})
		}
	}

	mc := core.DefaultModelConfig(seed)
	model, err := core.TrainModel(space, train, nil, mc)
	if err != nil {
		return nil, err
	}

	res := &EvalResult{Train: len(train), Eval: len(evalSet), Model: model}
	scratch := model.NewScratch()
	for _, s := range evalSet {
		res.EvalConfigs = append(res.EvalConfigs, s.Config)
		res.Actual = append(res.Actual, s.Seconds)
		res.Predicted = append(res.Predicted, model.Predict(s.Config, scratch))
	}
	res.MeanRelErr = stats.MeanRelError(res.Predicted, res.Actual)
	return res, nil
}

// MeanEvalError repeats EvalModel reps times with derived seeds and
// returns the mean of the mean relative errors, reproducing the paper's
// "we built several neural networks ... and report the mean".
func MeanEvalError(ctx context.Context, m core.Measurer, nTrain, nEval, reps int, seed int64) (float64, error) {
	var errs []float64
	for r := 0; r < reps; r++ {
		res, err := EvalModel(ctx, m, nTrain, nEval, seed+int64(r)*7919)
		if err != nil {
			return 0, err
		}
		errs = append(errs, res.MeanRelErr)
	}
	return stats.Mean(errs), nil
}
