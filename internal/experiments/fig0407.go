package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/devsim"
)

func init() {
	register(&Experiment{
		ID:    "fig4",
		Title: "Mean prediction error vs training-set size, Intel i7 (paper Figure 4)",
		Run:   errorCurveRunner(devsim.IntelI7),
	})
	register(&Experiment{
		ID:    "fig5",
		Title: "Mean prediction error vs training-set size, Nvidia K40 (paper Figure 5)",
		Run:   errorCurveRunner(devsim.NvidiaK40),
	})
	register(&Experiment{
		ID:    "fig6",
		Title: "Mean prediction error vs training-set size, AMD 7970 (paper Figure 6)",
		Run:   errorCurveRunner(devsim.AMD7970),
	})
	register(&Experiment{
		ID:    "fig7",
		Title: "Mean prediction error for convolution across Nvidia generations (paper Figure 7)",
		Run:   runFig7,
	})
}

// trainingSizes returns the x axis of the error-curve figures.
func trainingSizes(scale Scale) []int {
	switch scale {
	case Paper:
		return []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000, 1500, 2000, 2500, 3000, 3500, 4000}
	case Smoke:
		return []int{100, 300}
	default:
		return []int{100, 200, 400, 700, 1000, 1500, 2000}
	}
}

func curveParams(scale Scale) (reps, evalN int) {
	switch scale {
	case Paper:
		return 3, 500
	case Smoke:
		return 1, 100
	default:
		return 2, 300
	}
}

// errorCurveRunner builds the Figure 4/5/6 driver for one device: for
// each training-set size and each benchmark, train models on random valid
// configurations and report the mean relative error on held-out valid
// configurations, averaged over repetitions.
func errorCurveRunner(device string) func(*Ctx) (*Report, error) {
	return func(ctx *Ctx) (*Report, error) {
		dev := devsim.MustLookup(device)
		sizes := trainingSizes(ctx.Scale)
		reps, evalN := curveParams(ctx.Scale)

		t := &Table{
			Title:   fmt.Sprintf("Mean relative prediction error on %s", device),
			Columns: []string{"training configs"},
		}
		for _, b := range bench.All() {
			t.Columns = append(t.Columns, b.Name())
		}

		for _, n := range sizes {
			row := []string{fmt.Sprint(n)}
			for _, b := range bench.All() {
				m, err := core.NewSimMeasurer(b, dev, bench.Size{}, 3)
				if err != nil {
					return nil, err
				}
				mean, err := MeanEvalError(ctx.context(), m, n, evalN, reps, ctx.Seed+int64(n))
				if err != nil {
					return nil, err
				}
				row = append(row, pct(mean))
			}
			t.Add(row...)
			ctx.logf("  %s N=%d: %v", device, n, row[1:])
		}
		return &Report{Tables: []*Table{t}}, nil
	}
}

// runFig7 compares convolution model accuracy across the three Nvidia
// generations (Fermi C2070, Kepler K40, Maxwell GTX980).
func runFig7(ctx *Ctx) (*Report, error) {
	b := bench.MustLookup("convolution")
	sizes := trainingSizes(ctx.Scale)
	reps, evalN := curveParams(ctx.Scale)
	devices := devsim.Figure7Devices()

	t := &Table{
		Title:   "Mean relative prediction error for convolution",
		Columns: []string{"training configs"},
	}
	for _, dev := range devices {
		t.Columns = append(t.Columns, dev.Name())
	}
	for _, n := range sizes {
		row := []string{fmt.Sprint(n)}
		for _, dev := range devices {
			m, err := core.NewSimMeasurer(b, dev, bench.Size{}, 3)
			if err != nil {
				return nil, err
			}
			mean, err := MeanEvalError(ctx.context(), m, n, evalN, reps, ctx.Seed+int64(n))
			if err != nil {
				return nil, err
			}
			row = append(row, pct(mean))
		}
		t.Add(row...)
		ctx.logf("  fig7 N=%d: %v", n, row[1:])
	}
	return &Report{Tables: []*Table{t}}, nil
}
