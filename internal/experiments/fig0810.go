package experiments

import (
	"fmt"
	"math"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/devsim"
	"repro/internal/stats"
)

func init() {
	register(&Experiment{
		ID:    "fig8",
		Title: "Predicted vs actual execution times, convolution on Intel i7 (paper Figure 8)",
		Run:   scatterRunner(devsim.IntelI7),
	})
	register(&Experiment{
		ID:    "fig9",
		Title: "Predicted vs actual execution times, convolution on Nvidia K40 (paper Figure 9)",
		Run:   scatterRunner(devsim.NvidiaK40),
	})
	register(&Experiment{
		ID:    "fig10",
		Title: "Predicted vs actual execution times, convolution on AMD 7970 (paper Figure 10)",
		Run:   scatterRunner(devsim.AMD7970),
	})
}

// scatterRunner reproduces the Figures 8-10 scatter data: one model
// (no averaging over repetitions, as in the paper), 100 held-out
// configurations, predicted and actual times in milliseconds.
func scatterRunner(device string) func(*Ctx) (*Report, error) {
	return func(ctx *Ctx) (*Report, error) {
		dev := devsim.MustLookup(device)
		b := bench.MustLookup("convolution")
		m, err := core.NewSimMeasurer(b, dev, bench.Size{}, 3)
		if err != nil {
			return nil, err
		}
		nTrain := 2000
		if ctx.Scale == Smoke {
			nTrain = 200
		}
		res, err := EvalModel(ctx.context(), m, nTrain, 100, ctx.Seed+811)
		if err != nil {
			return nil, err
		}

		scatter := &Table{
			Title:   fmt.Sprintf("Predicted vs actual execution time on %s (ms, log axes in the paper)", device),
			Columns: []string{"actual (ms)", "predicted (ms)", "uses image", "uses local"},
		}
		for i, cfg := range res.EvalConfigs {
			img, loc := memorySpaceFlags(cfg.Map())
			scatter.Add(ms(res.Actual[i]), ms(res.Predicted[i]),
				fmt.Sprint(img), fmt.Sprint(loc))
		}

		summary := &Table{
			Title:   "Scatter summary",
			Columns: []string{"metric", "value"},
		}
		summary.Add("mean relative error", pct(res.MeanRelErr))
		summary.Add("rank correlation (Spearman)", f3(stats.Spearman(res.Predicted, res.Actual)))
		summary.Add("log-time Pearson", f3(logPearson(res.Predicted, res.Actual)))

		// The paper attributes the Intel clustering to image-without-local
		// configurations; report the cluster gap explicitly.
		var slowCluster, rest []float64
		for i, cfg := range res.EvalConfigs {
			img, loc := memorySpaceFlags(cfg.Map())
			if img && !loc {
				slowCluster = append(slowCluster, res.Actual[i])
			} else {
				rest = append(rest, res.Actual[i])
			}
		}
		if len(slowCluster) > 0 && len(rest) > 0 {
			summary.Add("median actual, image w/o local (ms)", ms(stats.Median(slowCluster)))
			summary.Add("median actual, others (ms)", ms(stats.Median(rest)))
			summary.Add("cluster separation (x)", f2(stats.Median(slowCluster)/stats.Median(rest)))
		}
		return &Report{Tables: []*Table{summary, scatter}}, nil
	}
}

// memorySpaceFlags extracts "uses image memory at all" and "uses local
// memory at all" from a configuration map, across the different parameter
// namings of the three benchmarks.
func memorySpaceFlags(m map[string]int) (img, loc bool) {
	for name, v := range m {
		if v == 0 {
			continue
		}
		switch name {
		case "use_image", "use_image_data", "use_image_tf", "use_image_left", "use_image_right":
			img = true
		case "use_local", "use_local_tf", "use_local_left", "use_local_right":
			loc = true
		}
	}
	return img, loc
}

func logPearson(a, b []float64) float64 {
	la := make([]float64, len(a))
	lb := make([]float64, len(b))
	for i := range a {
		la[i] = logOr(a[i])
		lb[i] = logOr(b[i])
	}
	return stats.Pearson(la, lb)
}

func logOr(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Log(v)
}
