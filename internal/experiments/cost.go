package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/devsim"
)

func init() {
	register(&Experiment{
		ID: "cost",
		Title: "Tuning-cost accounting: data gathering vs model training " +
			"(paper §6: ~30 min gathering vs ~1 min training for 2000 samples)",
		Run: runCost,
	})
}

// runCost reproduces the paper's §6 cost observation for the convolution
// benchmark: gathering the training data (kernel builds, benchmark runs,
// failed attempts at invalid configurations) dwarfs the time spent
// training the neural-network model. Gathering time is simulated (it is
// the sum of the simulated compile and run times); training and
// prediction times are real wall-clock.
func runCost(ctx *Ctx) (*Report, error) {
	n := 2000
	if ctx.Scale == Smoke {
		n = 200
	}
	b := bench.MustLookup("convolution")

	t := &Table{
		Title: fmt.Sprintf("Cost breakdown for tuning convolution with N=%d, M=200", n),
		Columns: []string{"device", "gather (min, simulated)", "invalid attempts",
			"train (s, wall)", "predict space (s, wall)", "2nd stage (s, simulated)"},
	}
	for _, dev := range devsim.PaperDevices() {
		m, err := core.NewSimMeasurer(b, dev, bench.Size{}, 3)
		if err != nil {
			return nil, err
		}
		opts := core.Options{
			TrainingSamples: n,
			SecondStage:     200,
			Seed:            ctx.Seed + 577,
			Model:           core.DefaultModelConfig(ctx.Seed + 577),
		}
		res, err := runStrategy(ctx, m, "ml", opts)
		if err != nil {
			return nil, err
		}
		t.Add(dev.Name(),
			f2(res.Cost.GatherSeconds/60),
			fmt.Sprint(res.InvalidTrain),
			f2(res.Cost.TrainSeconds),
			f2(res.Cost.PredictSeconds),
			f2(res.Cost.SecondStageSeconds))
		ctx.logf("  cost %s: gather %.1f min vs train %.1f s", dev.Name(),
			res.Cost.GatherSeconds/60, res.Cost.TrainSeconds)
	}
	return &Report{Tables: []*Table{t}}, nil
}
