package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/devsim"
)

func init() {
	register(&Experiment{
		ID: "baselines",
		Title: "Search strategies at equal measurement budget: ML tuner vs random " +
			"search vs hill climbing (extension; convolution)",
		Run: runBaselines,
	})
}

// runBaselines compares the paper's model-based tuner against the two
// classical empirical strategies it implicitly competes with, giving each
// the same number of measurements (N+M). The paper argues the model makes
// a fixed budget go further than blind sampling; hill climbing adds the
// other classical contender, which the invalid-riddled, multi-modal
// landscapes punish.
func runBaselines(ctx *Ctx) (*Report, error) {
	n, m2 := 1000, 100
	if ctx.Scale == Smoke {
		n, m2 = 200, 30
	}
	budget := n + m2
	b := bench.MustLookup("convolution")

	t := &Table{
		Title:   fmt.Sprintf("Slowdown vs global optimum with a budget of %d measurements", budget),
		Columns: []string{"device", "ML tuner (paper)", "random search", "hill climbing"},
	}
	for _, dev := range devsim.PaperDevices() {
		meas, err := core.NewSimMeasurer(b, dev, bench.Size{}, 3)
		if err != nil {
			return nil, err
		}
		ex, err := runStrategy(ctx, meas, "exhaustive", core.Options{})
		if err != nil {
			return nil, err
		}
		cell := func(r *core.Result) string {
			if !r.Found {
				return "-"
			}
			return f3(r.BestSeconds / ex.BestSeconds)
		}

		opts := core.Options{
			TrainingSamples: n, SecondStage: m2,
			Seed: ctx.Seed + 37, Model: core.DefaultModelConfig(ctx.Seed + 37),
		}
		tuned, err := runStrategy(ctx, meas, "ml", opts)
		if err != nil {
			return nil, err
		}
		tunedCell := "-"
		if tuned.Found {
			tunedCell = f3(tuned.BestSeconds / ex.BestSeconds)
		}

		rnd, err := runStrategy(ctx, meas, "random", core.Options{Budget: budget, Seed: ctx.Seed + 38})
		if err != nil {
			return nil, err
		}
		hc, err := runStrategy(ctx, meas, "hillclimb", core.Options{Budget: budget, Restarts: 8, Seed: ctx.Seed + 39})
		if err != nil {
			return nil, err
		}
		t.Add(dev.Name(), tunedCell, cell(rnd), cell(hc))
		ctx.logf("  baselines %s: tuner=%s random=%s hillclimb=%s", dev.Name(), tunedCell, cell(rnd), cell(hc))
	}
	return &Report{Tables: []*Table{t}}, nil
}
