package experiments

import (
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/devsim"
)

func init() {
	register(&Experiment{
		ID: "fig14",
		Title: "Auto-tuner vs best of 50K random configurations, raycasting and stereo " +
			"(paper Figure 14)",
		Run: runFig14,
	})
}

// runFig14 reproduces the large-space evaluation: the raycasting and
// stereo spaces are too large to search exhaustively, so the tuner
// (N=3000 first-stage, M=300 second-stage) is compared against the best
// of 50K random configurations. The paper reports no stereo results on
// the GPUs because the model predicted mostly invalid configurations
// there; the same outcome surfaces here as "no result".
func runFig14(ctx *Ctx) (*Report, error) {
	nTrain, m2, randomN := 3000, 300, 50000
	switch ctx.Scale {
	case Quick:
		nTrain, m2, randomN = 1500, 150, 10000
	case Smoke:
		nTrain, m2, randomN = 250, 30, 2000
	}

	t := &Table{
		Title: "Tuner result vs best of random search (slowdown = tuned / best-random)",
		Columns: []string{"benchmark", "device", "best random (ms)", "tuned (ms)",
			"slowdown", "2nd-stage invalid", "space sampled"},
	}
	for _, bname := range []string{"raycasting", "stereo"} {
		b := bench.MustLookup(bname)
		for _, dev := range devsim.PaperDevices() {
			meas, err := core.NewSimMeasurer(b, dev, bench.Size{}, 3)
			if err != nil {
				return nil, err
			}
			rnd, err := runStrategy(ctx, meas, "random", core.Options{Budget: randomN, Seed: ctx.Seed + 101})
			if err != nil {
				return nil, err
			}
			opts := core.Options{
				TrainingSamples: nTrain,
				SecondStage:     m2,
				Seed:            ctx.Seed + 211,
				Model:           core.DefaultModelConfig(ctx.Seed + 211),
			}
			res, err := runStrategy(ctx, meas, "ml", opts)
			if err != nil {
				return nil, err
			}
			sampled := pct(res.MeasuredFraction)
			if !res.Found || !rnd.Found {
				t.Add(bname, dev.Name(), ms(rnd.BestSeconds), "no result", "-",
					f3(float64(res.InvalidSecond)), sampled)
				ctx.logf("  fig14 %s/%s: no tuner result (%d invalid stage-2)", bname, dev.Name(), res.InvalidSecond)
				continue
			}
			t.Add(bname, dev.Name(), ms(rnd.BestSeconds), ms(res.BestSeconds),
				f3(res.BestSeconds/rnd.BestSeconds),
				f3(float64(res.InvalidSecond)), sampled)
			ctx.logf("  fig14 %s/%s: slowdown %.3f", bname, dev.Name(), res.BestSeconds/rnd.BestSeconds)
		}
	}
	return &Report{Tables: []*Table{t}}, nil
}
