package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/devsim"
	"repro/internal/stats"
)

func init() {
	register(&Experiment{
		ID:    "fig11",
		Title: "Auto-tuner slowdown vs global optimum, convolution on Nvidia K40 (paper Figure 11)",
		Run:   tunerGridRunner(devsim.NvidiaK40),
	})
	register(&Experiment{
		ID:    "fig12",
		Title: "Auto-tuner slowdown vs global optimum, convolution on Intel i7 (paper Figure 12)",
		Run:   tunerGridRunner(devsim.IntelI7),
	})
	register(&Experiment{
		ID:    "fig13",
		Title: "Auto-tuner slowdown vs global optimum, convolution on AMD 7970 (paper Figure 13)",
		Run:   tunerGridRunner(devsim.AMD7970),
	})
}

func gridParams(scale Scale) (ns []int, msizes []int, reps int) {
	switch scale {
	case Paper:
		return []int{100, 200, 300, 400, 500, 1000, 2000}, []int{10, 50, 100, 150, 200}, 3
	case Smoke:
		return []int{200, 500}, []int{10, 50}, 1
	default:
		return []int{100, 300, 500, 1000, 2000}, []int{10, 50, 100, 200}, 2
	}
}

// tunerGridRunner reproduces Figures 11-13: the mean slowdown of the
// auto-tuner's result relative to the exhaustively determined global
// optimum, over a grid of training-set sizes N and second-stage sizes M.
// Grid cells where every repetition ended with an all-invalid second
// stage are reported as "-" (the paper's "some results missing due to
// invalid configurations").
func tunerGridRunner(device string) func(*Ctx) (*Report, error) {
	return func(ctx *Ctx) (*Report, error) {
		dev := devsim.MustLookup(device)
		b := bench.MustLookup("convolution")
		size := bench.Size{}
		if ctx.Scale == Smoke {
			size = bench.Size{W: 512, H: 512}
		}
		m, err := core.NewSimMeasurer(b, dev, size, 3)
		if err != nil {
			return nil, err
		}
		ex, err := runStrategy(ctx, m, "exhaustive", core.Options{})
		if err != nil {
			return nil, err
		}
		if !ex.Found {
			return nil, fmt.Errorf("fig11-13: no valid configuration on %s", device)
		}
		ctx.logf("  global optimum on %s: %v (%.3f ms)", device, ex.Best, ex.BestSeconds*1e3)

		ns, msizes, reps := gridParams(ctx.Scale)
		maxM := msizes[len(msizes)-1]

		t := &Table{
			Title: fmt.Sprintf("Mean slowdown vs global optimum on %s (convolution; optimum %.3f ms)",
				device, ex.BestSeconds*1e3),
			Columns: []string{"training configs"},
		}
		for _, M := range msizes {
			t.Columns = append(t.Columns, fmt.Sprintf("M=%d", M))
		}

		for _, n := range ns {
			// slowdowns[mi] collects the per-repetition slowdowns for
			// msizes[mi]; a nil entry for a repetition means "no result".
			slowdowns := make([][]float64, len(msizes))
			for rep := 0; rep < reps; rep++ {
				seed := ctx.Seed + int64(n)*31 + int64(rep)*7919
				top, err := trainAndRank(ctx.context(), m, n, maxM, seed)
				if err != nil {
					return nil, err
				}
				// Measure candidates once, best-prefix per M.
				times := make([]float64, len(top))
				for i, p := range top {
					secs, err := m.Measure(ctx.context(), m.Space().At(p.Index))
					if err != nil {
						if devsim.IsInvalid(err) {
							times[i] = math.Inf(1)
							continue
						}
						return nil, err
					}
					times[i] = secs
				}
				for mi, M := range msizes {
					best := math.Inf(1)
					for i := 0; i < M && i < len(times); i++ {
						if times[i] < best {
							best = times[i]
						}
					}
					if !math.IsInf(best, 1) {
						slowdowns[mi] = append(slowdowns[mi], best/ex.BestSeconds)
					}
				}
			}
			row := []string{fmt.Sprint(n)}
			for mi := range msizes {
				if len(slowdowns[mi]) == 0 {
					row = append(row, "-") // all second stages invalid
				} else {
					row = append(row, f3(stats.Mean(slowdowns[mi])))
				}
			}
			t.Add(row...)
			ctx.logf("  %s N=%d: %v", device, n, row[1:])
		}
		return &Report{Tables: []*Table{t}}, nil
	}
}

// trainAndRank gathers n valid training samples, trains the paper's
// model, and returns the maxM best-predicted configurations.
func trainAndRank(ctx context.Context, m core.Measurer, n, maxM int, seed int64) ([]core.Predicted, error) {
	space := m.Space()
	rng := rand.New(rand.NewSource(seed))
	budget := 4*n + 1000
	if int64(budget) > space.Size() {
		budget = int(space.Size())
	}
	var samples []core.Sample
	for _, idx := range space.SampleIndices(rng, budget) {
		if len(samples) >= n {
			break
		}
		cfg := space.At(idx)
		secs, err := m.Measure(ctx, cfg)
		if err != nil {
			if devsim.IsInvalid(err) {
				continue
			}
			return nil, err
		}
		samples = append(samples, core.Sample{Config: cfg, Seconds: secs})
	}
	model, err := core.TrainModel(space, samples, nil, core.DefaultModelConfig(seed))
	if err != nil {
		return nil, err
	}
	return model.TopM(maxM), nil
}
