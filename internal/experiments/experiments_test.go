package experiments

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/devsim"
)

func smokeCtx() *Ctx {
	return &Ctx{Scale: Smoke, Seed: 42}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "fig1", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"cost", "ablation", "transfer",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{"quick": Quick, "PAPER": Paper, "Smoke": Smoke} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("gigantic"); err == nil {
		t.Error("bad scale accepted")
	}
	if Quick.String() != "quick" || Paper.String() != "paper" || Smoke.String() != "smoke" {
		t.Error("Scale.String round trip broken")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "b"},
	}
	tab.Add("1", "x,y")
	tab.Add("2", `quote"d`)
	var text bytes.Buffer
	tab.Render(&text)
	if !strings.Contains(text.String(), "demo") || !strings.Contains(text.String(), "x,y") {
		t.Errorf("render output: %s", text.String())
	}
	var csv bytes.Buffer
	if err := tab.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	got := csv.String()
	if !strings.Contains(got, `"x,y"`) || !strings.Contains(got, `"quote""d"`) {
		t.Errorf("csv quoting wrong: %s", got)
	}
}

func TestReportSaveCSV(t *testing.T) {
	dir := t.TempDir()
	rep := &Report{ID: "unit", Tables: []*Table{
		{Title: "t0", Columns: []string{"c"}, Rows: [][]string{{"v"}}},
		{Title: "t1", Columns: []string{"c"}, Rows: [][]string{{"w"}}},
	}}
	if err := rep.SaveCSV(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"unit_0.csv", "unit_1.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}

func TestTables(t *testing.T) {
	for _, id := range []string{"table1", "table2"} {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Execute(smokeCtx())
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Tables) == 0 {
			t.Errorf("%s produced no tables", id)
		}
	}
}

func TestFig1Smoke(t *testing.T) {
	e, _ := Lookup("fig1")
	rep, err := e.Execute(smokeCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("fig1 produced %d tables", len(rep.Tables))
	}
	matrix := rep.Tables[1]
	if len(matrix.Rows) != 3 {
		t.Fatalf("fig1 matrix rows = %d", len(matrix.Rows))
	}
	// Diagonal must be 1.00; off-diagonals at least 1 (own best is best).
	for i, row := range matrix.Rows {
		if row[i+1] != "1.00" {
			t.Errorf("diagonal cell [%d] = %q, want 1.00", i, row[i+1])
		}
	}
}

func TestEvalModelSmoke(t *testing.T) {
	b := bench.MustLookup("convolution")
	dev := devsim.MustLookup(devsim.IntelI7)
	m, err := core.NewSimMeasurer(b, dev, bench.Size{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvalModel(context.Background(), m, 150, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Train != 150 || res.Eval != 60 {
		t.Errorf("split = %d/%d", res.Train, res.Eval)
	}
	if res.MeanRelErr <= 0 || res.MeanRelErr > 1.5 {
		t.Errorf("mean relative error = %v", res.MeanRelErr)
	}
	if len(res.Actual) != 60 || len(res.Predicted) != 60 {
		t.Errorf("series lengths %d/%d", len(res.Actual), len(res.Predicted))
	}
}

func TestErrorCurveSmoke(t *testing.T) {
	e, _ := Lookup("fig4")
	rep, err := e.Execute(smokeCtx())
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.Tables[0]
	if len(tab.Rows) != len(trainingSizes(Smoke)) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Columns) != 4 { // sizes + 3 benchmarks
		t.Fatalf("columns = %v", tab.Columns)
	}
}

func TestScatterSmoke(t *testing.T) {
	e, _ := Lookup("fig8")
	rep, err := e.Execute(smokeCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("fig8 tables = %d", len(rep.Tables))
	}
	if got := len(rep.Tables[1].Rows); got != 100 {
		t.Errorf("scatter points = %d, want 100", got)
	}
}

func TestMemorySpaceFlags(t *testing.T) {
	img, loc := memorySpaceFlags(map[string]int{"use_image": 1, "use_local": 0})
	if !img || loc {
		t.Errorf("conv flags = %v/%v", img, loc)
	}
	img, loc = memorySpaceFlags(map[string]int{"use_image_tf": 0, "use_local_tf": 1, "use_const_tf": 1})
	if img || !loc {
		t.Errorf("ray flags = %v/%v", img, loc)
	}
	img, loc = memorySpaceFlags(map[string]int{"use_image_left": 1, "use_local_right": 1})
	if !img || !loc {
		t.Errorf("stereo flags = %v/%v", img, loc)
	}
}

func TestTunerGridSmoke(t *testing.T) {
	e, _ := Lookup("fig11")
	rep, err := e.Execute(smokeCtx())
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.Tables[0]
	ns, msz, _ := gridParams(Smoke)
	if len(tab.Rows) != len(ns) || len(tab.Columns) != len(msz)+1 {
		t.Fatalf("grid shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
	// Slowdowns, when present, must be >= 1 (cannot beat the optimum by
	// more than measurement noise; allow 3% slack for noisy re-measures).
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			if cell == "-" {
				continue
			}
			var v float64
			if _, err := fmtSscan(cell, &v); err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			if v < 0.97 {
				t.Errorf("slowdown %v below 1", v)
			}
		}
	}
}

func TestCostSmoke(t *testing.T) {
	e, _ := Lookup("cost")
	rep, err := e.Execute(smokeCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 3 {
		t.Errorf("cost rows = %d", len(rep.Tables[0].Rows))
	}
}

// fmtSscan wraps fmt.Sscan to keep the test import list tidy.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

// TestTransferSmoke runs the leave-one-device-out study at smoke scale:
// one row per held-out device, each reporting the portable model's and
// the per-device baseline's achieved fraction of the true optimum.
func TestTransferSmoke(t *testing.T) {
	e, err := Lookup("transfer")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Execute(smokeCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 {
		t.Fatalf("transfer produced %d tables", len(rep.Tables))
	}
	tab := rep.Tables[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("transfer rows %d, want one per held-out device", len(tab.Rows))
	}
	fracCol := func(name string) int {
		for i, c := range tab.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %q missing in %v", name, tab.Columns)
		return -1
	}
	pi, bi := fracCol("portable frac"), fracCol("baseline frac")
	reported := 0
	for _, row := range tab.Rows {
		for _, col := range []int{pi, bi} {
			if row[col] == "-" {
				continue // every candidate invalid on that device (§7)
			}
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil || v <= 0 || v > 1.0000001 {
				t.Errorf("row %v: fraction %q out of (0, 1]", row, row[col])
			}
			reported++
		}
	}
	if reported == 0 {
		t.Error("no achieved fractions reported at all")
	}
}
