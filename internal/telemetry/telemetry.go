// Package telemetry is mltuned's zero-dependency metrics subsystem:
// counters, gauges, and fixed-bucket latency histograms with a
// lock-free atomic hot path, collected in a Registry that renders both
// Prometheus text exposition format (GET /metrics) and a JSON snapshot
// (GET /v1/stats).
//
// Design constraints, in order:
//
//  1. The hot path allocates nothing. Incrementing a counter, moving a
//     gauge, or observing a histogram value is a handful of atomic
//     operations on pre-resolved handles — no map lookups, no label
//     formatting, no interface boxing. Labelled handles are resolved
//     once at wiring time (Vec.With) and then used like unlabelled ones.
//  2. Mutation methods are nil-receiver safe: a component that was
//     wired without metrics (tests, library use) calls the same code
//     with nil handles and pays two instructions per call. Read and
//     registration paths are not nil-safe — those are wiring bugs.
//  3. Export never blocks the hot path. Snapshots read the atomics;
//     the registry lock only serialises registration and enumeration.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind is the metric family type.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// --- primitives -------------------------------------------------------

// Counter is a monotonically increasing value. The zero value is ready
// to use; a nil *Counter discards mutations.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative n is a programming error and is ignored: a
// counter must never go down).
func (c *Counter) Add(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(uint64(n))
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use; a nil *Gauge discards mutations.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Inc adds one.
func (g *Gauge) Inc() {
	if g == nil {
		return
	}
	g.v.Add(1)
}

// Dec subtracts one.
func (g *Gauge) Dec() {
	if g == nil {
		return
	}
	g.v.Add(-1)
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution: observation counts per
// upper bound plus a total count and sum. Observe is lock-free: one
// atomic add into the right bucket, one into the count, and a CAS loop
// folding the value into the float64 sum. A nil *Histogram discards
// observations.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; the +Inf bucket is implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DefLatencyBuckets are the default request-latency upper bounds in
// seconds: 100µs to ~10s, roughly ×2.5 per step — wide enough for a
// cache-hit predict (µs) and a cold full-space top-M sweep (seconds)
// to land in distinct buckets.
func DefLatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets()
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~20) and the scan touches
	// one cache line of bounds, which beats a branchy binary search at
	// this size — and allocates nothing either way.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// --- labelled families ------------------------------------------------

// labelKey joins label values into a map key. Values are joined with
// 0xFF, a byte that cannot appear in UTF-8 text, so distinct value
// tuples cannot collide.
func labelKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, 0xFF)
		}
		b = append(b, v...)
	}
	return string(b)
}

// child is one labelled instance inside a family.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// family is one named metric: its metadata plus its children (exactly
// one, unlabelled, for plain metrics).
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64 // histogram families only

	mu       sync.Mutex
	children map[string]*child
	order    []*child // insertion order, for stable export
}

func (f *family) child(values []string) *child {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %s has labels %v, got %d values", f.name, f.labelNames, len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		c.counter = &Counter{}
	case KindGauge:
		c.gauge = &Gauge{}
	case KindHistogram:
		c.hist = newHistogram(f.buckets)
	}
	f.children[key] = c
	f.order = append(f.order, c)
	return c
}

// CounterVec is a counter family with labels. Resolve handles once at
// wiring time with With; the returned *Counter is the allocation-free
// hot-path handle.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use. Not for hot paths: resolve once and keep the handle.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).counter }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).gauge }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).hist }

// --- registry ---------------------------------------------------------

// Registry holds metric families and renders them. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds a family, panicking on a duplicate name: metric wiring
// is static, and two components claiming one name is a bug that must
// fail loudly at startup, not export garbage forever.
func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[f.name]; ok {
		panic(fmt.Sprintf("telemetry: duplicate metric %s", f.name))
	}
	f.children = make(map[string]*child)
	r.byName[f.name] = f
	r.families = append(r.families, f)
}

// Counter registers and returns an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := &family{name: name, help: help, kind: KindCounter}
	r.register(f)
	return f.child(nil).counter
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := &family{name: name, help: help, kind: KindCounter, labelNames: labels}
	r.register(f)
	return &CounterVec{f}
}

// Gauge registers and returns an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := &family{name: name, help: help, kind: KindGauge}
	r.register(f)
	return f.child(nil).gauge
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := &family{name: name, help: help, kind: KindGauge, labelNames: labels}
	r.register(f)
	return &GaugeVec{f}
}

// Histogram registers and returns an unlabelled histogram (nil buckets
// = DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := &family{name: name, help: help, kind: KindHistogram, buckets: buckets}
	r.register(f)
	return f.child(nil).hist
}

// HistogramVec registers a histogram family with the given label names
// (nil buckets = DefLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := &family{name: name, help: help, kind: KindHistogram, buckets: buckets, labelNames: labels}
	r.register(f)
	return &HistogramVec{f}
}

// snapshotFamilies copies the family list under the registry lock; the
// per-family child lists are copied under each family's lock. Metric
// values are then read from the atomics without any lock.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	return fams
}

func (f *family) snapshotChildren() []*child {
	f.mu.Lock()
	cs := append([]*child(nil), f.order...)
	f.mu.Unlock()
	return cs
}
