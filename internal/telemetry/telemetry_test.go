package telemetry

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	g := r.Gauge("g", "a gauge")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters never go down
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %d, want 6", got)
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Inc()
	g.Dec()
	g.Add(2)
	h.Observe(0.5)
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+5; math.Abs(got-want) > 1e-12 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	// Raw (non-cumulative) per-bucket counts: ≤0.01 gets 0.005 and the
	// boundary value 0.01; ≤0.1 gets 0.05; ≤1 gets 0.5; +Inf gets 5.
	want := []uint64{2, 1, 1, 1}
	for i := range want {
		if got := h.counts[i].Load(); got != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
}

func TestVecResolvesStableHandles(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "route", "class")
	a := v.With("/v1/predict", "2xx")
	b := v.With("/v1/predict", "2xx")
	if a != b {
		t.Error("With returned distinct handles for identical labels")
	}
	other := v.With("/v1/topm", "2xx")
	if a == other {
		t.Error("distinct labels share a handle")
	}
	a.Inc()
	a.Inc()
	other.Inc()
	if a.Value() != 2 || other.Value() != 1 {
		t.Errorf("values %d/%d, want 2/1", a.Value(), other.Value())
	}
}

func TestLabelKeyCollisions(t *testing.T) {
	// ("ab","c") and ("a","bc") must resolve to different children.
	r := NewRegistry()
	v := r.CounterVec("x_total", "", "p", "q")
	if v.With("ab", "c") == v.With("a", "bc") {
		t.Error("label tuples collide")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup_total", "")
}

// TestHotPathZeroAlloc is the acceptance gate for the metrics hot
// path: incrementing counters, moving gauges and observing histograms
// through pre-resolved handles must not allocate.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	cv := r.CounterVec("cv_total", "", "route").With("/v1/predict")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		cv.Add(2)
		g.Inc()
		g.Dec()
		h.Observe(0.0042)
	}); allocs != 0 {
		t.Errorf("hot path allocates %.1f times per run, want 0", allocs)
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", []float64{0.5})
	var wg sync.WaitGroup
	const workers, per = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if got, want := h.Sum(), 0.25*workers*per; math.Abs(got-want) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", got, want)
	}
}

// parseExposition is a strict-enough parser of the text exposition
// format (version 0.0.4) for tests: it validates line structure and
// returns series → value. It rejects lines that do not parse, so a
// formatting regression fails the test rather than vanishing.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	series := make(map[string]float64)
	typed := make(map[string]string)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			if !strings.Contains(rest, " ") {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, fields[1])
			}
			typed[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		// Sample line: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
			}
			name = key[:i]
			body := key[i+1 : len(key)-1]
			for _, pair := range splitLabels(body) {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 || len(pair) < eq+3 || pair[eq+1] != '"' || pair[len(pair)-1] != '"' {
					t.Fatalf("line %d: malformed label %q", ln+1, pair)
				}
			}
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok {
				if typed[b] == "histogram" {
					base = b
				}
				break
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("line %d: sample %q has no TYPE header", ln+1, name)
		}
		series[key] = val
	}
	return series
}

// splitLabels splits `a="b",c="d"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	inQuotes, start := false, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuotes {
				i++
			}
		case '"':
			inQuotes = !inQuotes
		case ',':
			if !inQuotes {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func TestWritePrometheusParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain_total", "plain counter").Add(7)
	rv := r.CounterVec("routed_total", "per route", "route")
	rv.With(`/v1/predict`).Add(3)
	rv.With(`weird"label\with
newline`).Inc()
	r.Gauge("depth", "queue depth").Set(-2)
	h := r.Histogram("latency_seconds", "request latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	series := parseExposition(t, sb.String())

	checks := map[string]float64{
		"plain_total":                        7,
		`routed_total{route="/v1/predict"}`:  3,
		"depth":                              -2,
		`latency_seconds_bucket{le="0.001"}`: 1,
		`latency_seconds_bucket{le="0.01"}`:  1,
		`latency_seconds_bucket{le="+Inf"}`:  2,
		"latency_seconds_count":              2,
	}
	for key, want := range checks {
		got, ok := series[key]
		if !ok {
			t.Errorf("series %q missing from exposition:\n%s", key, sb.String())
			continue
		}
		if got != want {
			t.Errorf("series %q = %g, want %g", key, got, want)
		}
	}
	if got := series["latency_seconds_sum"]; math.Abs(got-0.5005) > 1e-9 {
		t.Errorf("latency_seconds_sum = %g, want 0.5005", got)
	}
}

func TestSnapshotAndCounterTotals(t *testing.T) {
	r := NewRegistry()
	rv := r.CounterVec("req_total", "", "route", "class")
	rv.With("/v1/predict", "2xx").Add(9)
	r.Gauge("inflight", "").Set(3)
	h := r.Histogram("lat", "", []float64{1})
	h.Observe(0.5)

	snap := r.Snapshot()
	totals := snap.CounterTotals()
	if got := totals[`req_total{class="2xx",route="/v1/predict"}`]; got != 9 {
		t.Errorf("CounterTotals = %v, want req_total … = 9", totals)
	}
	var found bool
	for _, m := range snap.Metrics {
		if m.Name == "lat" {
			found = true
			if len(m.Values) != 1 || m.Values[0].Count != 1 || m.Values[0].Sum != 0.5 {
				t.Errorf("histogram snapshot %+v", m.Values)
			}
			if n := len(m.Values[0].Buckets); n != 2 {
				t.Errorf("histogram snapshot has %d buckets, want 2", n)
			}
		}
	}
	if !found {
		t.Error("histogram family missing from snapshot")
	}
}
