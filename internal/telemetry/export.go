package telemetry

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// --- Prometheus text exposition format --------------------------------

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE header per family,
// one sample line per child (per bucket for histograms, cumulative,
// with the canonical _bucket/_sum/_count series).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(string(f.kind))
		bw.WriteByte('\n')
		for _, c := range f.snapshotChildren() {
			switch f.kind {
			case KindCounter:
				writeSample(bw, f.name, "", f.labelNames, c.labelValues, "", "", formatUint(c.counter.Value()))
			case KindGauge:
				writeSample(bw, f.name, "", f.labelNames, c.labelValues, "", "", strconv.FormatInt(c.gauge.Value(), 10))
			case KindHistogram:
				h := c.hist
				cum := uint64(0)
				for i := range h.counts {
					cum += h.counts[i].Load()
					le := "+Inf"
					if i < len(h.bounds) {
						le = formatFloat(h.bounds[i])
					}
					writeSample(bw, f.name, "_bucket", f.labelNames, c.labelValues, "le", le, formatUint(cum))
				}
				writeSample(bw, f.name, "_sum", f.labelNames, c.labelValues, "", "", formatFloat(h.Sum()))
				writeSample(bw, f.name, "_count", f.labelNames, c.labelValues, "", "", formatUint(h.Count()))
			}
		}
	}
	return bw.Flush()
}

// writeSample writes one exposition line:
// name[suffix]{labels...[,extraName="extraValue"]} value
func writeSample(bw *bufio.Writer, name, suffix string, labelNames, labelValues []string, extraName, extraValue, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labelNames) > 0 || extraName != "" {
		bw.WriteByte('{')
		for i, ln := range labelNames {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(ln)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(labelValues[i]))
			bw.WriteByte('"')
		}
		if extraName != "" {
			if len(labelNames) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(extraName)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(extraValue))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// --- JSON snapshot ----------------------------------------------------

// Snapshot is the JSON view of a registry: the GET /v1/stats payload
// and the structure cmd/mlbench diffs across a load run.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one family.
type MetricSnapshot struct {
	Name   string          `json:"name"`
	Kind   Kind            `json:"kind"`
	Help   string          `json:"help,omitempty"`
	Values []ValueSnapshot `json:"values"`
}

// ValueSnapshot is one labelled instance. Counters and gauges fill
// Value; histograms fill Count, Sum and Buckets.
type ValueSnapshot struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`
	Count   uint64            `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets []BucketSnapshot  `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket; LE is "+Inf" on
// the last one.
type BucketSnapshot struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot captures every metric's current value. It reads the atomics
// without stopping writers, so a snapshot taken under load is a
// near-point-in-time view, not a consistent cut — fine for stats
// endpoints and load-test diffs.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	for _, f := range r.snapshotFamilies() {
		ms := MetricSnapshot{Name: f.name, Kind: f.kind, Help: f.help}
		for _, c := range f.snapshotChildren() {
			vs := ValueSnapshot{}
			if len(f.labelNames) > 0 {
				vs.Labels = make(map[string]string, len(f.labelNames))
				for i, ln := range f.labelNames {
					vs.Labels[ln] = c.labelValues[i]
				}
			}
			switch f.kind {
			case KindCounter:
				vs.Value = float64(c.counter.Value())
			case KindGauge:
				vs.Value = float64(c.gauge.Value())
			case KindHistogram:
				h := c.hist
				vs.Count = h.Count()
				vs.Sum = h.Sum()
				cum := uint64(0)
				vs.Buckets = make([]BucketSnapshot, 0, len(h.counts))
				for i := range h.counts {
					cum += h.counts[i].Load()
					le := "+Inf"
					if i < len(h.bounds) {
						le = formatFloat(h.bounds[i])
					}
					vs.Buckets = append(vs.Buckets, BucketSnapshot{LE: le, Count: cum})
				}
			}
			ms.Values = append(ms.Values, vs)
		}
		snap.Metrics = append(snap.Metrics, ms)
	}
	return snap
}

// CounterTotals flattens a snapshot's counters into "name{label="v"}"
// → value, the shape mlbench diffs before/after a load run. Label
// order inside the braces follows the family's declared label order,
// so keys are stable across snapshots of one daemon.
func (s Snapshot) CounterTotals() map[string]float64 {
	out := make(map[string]float64)
	for _, m := range s.Metrics {
		if m.Kind != KindCounter {
			continue
		}
		for _, v := range m.Values {
			out[seriesKey(m.Name, v.Labels)] = v.Value
		}
	}
	return out
}

// seriesKey formats name plus labels as a Prometheus-style series
// identifier. Maps iterate in random order, so label names are sorted.
func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	names := make([]string, 0, len(labels))
	for ln := range labels {
		names = append(names, ln)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, ln := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(ln)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[ln]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}
